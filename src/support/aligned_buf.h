// Aligned, grow-only workspace buffers and a thread-local workspace pool.
//
// The compute kernels (dgemm packing panels, sort_4 tiles, the TCE
// executors' block staging buffers) need scratch space on every call. A
// fresh std::vector per call puts an allocator round trip and a page-fault
// warmup on the hot path; the pool below hands out 64-byte-aligned buffers
// that are owned thread-locally and only ever grow, so steady-state kernel
// invocations perform zero heap allocations.
//
// Every actual heap allocation is counted in a process-wide relaxed atomic
// (`WorkspacePool::allocation_count()`); tests use it to assert that a hot
// loop has reached steady state (see test_linalg.cpp GemmZeroSteadyStateAllocs).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "support/analysis.h"
#include "support/error.h"

namespace mp::support {

/// A 64-byte-aligned buffer of doubles that grows geometrically and never
/// shrinks. Contents are NOT preserved across reserve() and NOT zeroed.
class AlignedBuf {
 public:
  static constexpr size_t kAlign = 64;  // cache line / AVX-512 vector

  AlignedBuf() = default;
  AlignedBuf(const AlignedBuf&) = delete;
  AlignedBuf& operator=(const AlignedBuf&) = delete;
  AlignedBuf(AlignedBuf&& o) noexcept
      : data_(o.data_), cap_(o.cap_) {
    o.data_ = nullptr;
    o.cap_ = 0;
  }
  ~AlignedBuf() { ::operator delete[](data_, std::align_val_t(kAlign)); }

  /// Ensure capacity for at least `elems` doubles. Returns the (possibly
  /// relocated) data pointer. Counts one global allocation when it has to
  /// touch the heap.
  double* reserve(size_t elems) {
    if (elems > cap_) grow(elems);
    return data_;
  }

  double* data() { return data_; }
  size_t capacity() const { return cap_; }

  /// Process-wide count of heap allocations performed by all AlignedBufs.
  static uint64_t allocation_count() {
    return allocs_().load(std::memory_order_relaxed);
  }

 private:
  void grow(size_t elems) {
    size_t cap = cap_ ? cap_ : 256;
    while (cap < elems) cap *= 2;
    ::operator delete[](data_, std::align_val_t(kAlign));
    data_ = static_cast<double*>(
        ::operator new[](cap * sizeof(double), std::align_val_t(kAlign)));
    cap_ = cap;
    allocs_().fetch_add(1, std::memory_order_relaxed);
  }

  static std::atomic<uint64_t>& allocs_() {
    static std::atomic<uint64_t> count{0};
    return count;
  }

  double* data_ = nullptr;
  size_t cap_ = 0;
};

/// A small set of named thread-local workspace slots. Kernels address their
/// scratch buffers by slot id so concurrent kernels on the same thread
/// (e.g. dgemm's A and B panels) never alias each other.
class WorkspacePool {
 public:
  static constexpr int kSlots = 8;

  WorkspacePool() = default;
  ~WorkspacePool() {
    // Un-register with the lifecycle checker: a later thread's TLS block
    // may land on this address and must be able to claim it afresh.
    MP_ANNOTATE_TLS_RELEASE(this);
  }
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  // Slot assignments (documented so new users pick a free one):
  enum Slot {
    kGemmPackA = 0,   ///< dgemm packed A block (kMc x kKc)
    kGemmPackB = 1,   ///< dgemm packed B panel (kKc x kNc)
    kGemmTile = 2,    ///< dgemm edge-tile staging (kMr x kNr)
    kSortTile = 3,    ///< sort_4 transpose tile
    kExecA = 4,       ///< executor A block staging
    kExecB = 5,       ///< executor B block staging
    kExecC = 6,       ///< executor C accumulator
    kExecSorted = 7,  ///< executor sorted-output staging
  };

  /// The calling thread's pool (created on first use).
  static WorkspacePool& tls() {
    thread_local WorkspacePool pool;
    return pool;
  }

  /// A buffer with room for `elems` doubles in the given slot.
  double* get(int slot, size_t elems) {
    MP_DCHECK(slot >= 0 && slot < kSlots, "WorkspacePool: bad slot");
    // Thread-local ownership check: this pool must only ever be reached
    // through tls() on its owning thread; a cached reference leaking to
    // another thread is an MPA006 finding.
    MP_ANNOTATE_TLS_GUARD(this);
    return bufs_[slot].reserve(elems);
  }

  AlignedBuf& buf(int slot) {
    MP_DCHECK(slot >= 0 && slot < kSlots, "WorkspacePool: bad slot");
    return bufs_[slot];
  }

  /// Alias of AlignedBuf::allocation_count() for test readability.
  static uint64_t allocation_count() { return AlignedBuf::allocation_count(); }

 private:
  AlignedBuf bufs_[kSlots];
};

}  // namespace mp::support
