// Small online-statistics helpers used by the tracer, the simulator and the
// benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace mp {

/// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile over a copy of the sample set (exact, nearest-rank).
/// p in [0, 100]. Returns 0 for an empty sample.
double percentile(std::vector<double> samples, double p);

}  // namespace mp
