// Minimal leveled logger. Thread-safe: each message is formatted into a
// single string and written with one fwrite, so lines never interleave.
#pragma once

#include <cstdarg>
#include <string>

namespace mp::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default: kInfo.
void set_level(Level lvl);
Level level();

/// printf-style logging.
void logf(Level lvl, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace mp::log

#define MP_LOG_DEBUG(...) ::mp::log::logf(::mp::log::Level::kDebug, __VA_ARGS__)
#define MP_LOG_INFO(...) ::mp::log::logf(::mp::log::Level::kInfo, __VA_ARGS__)
#define MP_LOG_WARN(...) ::mp::log::logf(::mp::log::Level::kWarn, __VA_ARGS__)
#define MP_LOG_ERROR(...) ::mp::log::logf(::mp::log::Level::kError, __VA_ARGS__)
