// DPLASMA-style tiled Cholesky factorization over the PTG runtime.
//
// PaRSEC grew out of dense linear algebra; this app demonstrates that the
// runtime built for the CC port is general-purpose by expressing the
// classic right-looking tiled POTRF dataflow as a four-class PTG:
//
//   POTRF(k)    : factor diagonal tile (k,k)
//   TRSM(i,k)   : panel solve of tile (i,k) against L(k,k)
//   SYRK(i,k)   : diagonal update of (i,i) by the panel tile (i,k)
//   GEMM(i,j,k) : trailing update of (i,j) by panel tiles (i,k), (j,k)
//
// with tiles flowing between tasks exactly like the C matrices of the CC
// chains. Distribution over ranks is per-tile; the runtime ships tiles
// between ranks implicitly.
#pragma once

#include <cstdint>
#include <vector>

#include "ptg/context.h"
#include "ptg/trace.h"
#include "vc/cluster.h"

namespace mp::apps {

struct TiledCholeskyOptions {
  int tiles = 4;        ///< tile grid dimension T (matrix is T*b x T*b)
  int tile_size = 8;    ///< tile dimension b
  int workers_per_rank = 2;
  ptg::SchedPolicy policy = ptg::SchedPolicy::kPriority;
  bool enable_tracing = false;
};

struct TiledCholeskyResult {
  std::vector<double> l;   ///< n x n column-major lower factor (upper zero)
  uint64_t tasks_executed = 0;
  uint64_t remote_activations = 0;
  ptg::Trace trace;        ///< merged over ranks (if tracing)
};

/// Class ids of the four-class Cholesky pool, in registration order.
struct CholeskyPoolIds {
  int16_t potrf = -1;
  int16_t trsm = -1;
  int16_t syrk = -1;
  int16_t gemm = -1;
};

/// Build the symbolic POTRF/TRSM/SYRK/GEMM taskpool for a `tiles` x
/// `tiles` grid distributed over `nranks` ranks: placement, priorities,
/// input/output declarations and the full dataflow wiring, with no-op
/// bodies. tiled_cholesky() installs the real kernels on top;
/// tools/mp-verify materializes the pool as-is and runs
/// analysis::verify_graph over it, so the statically verified graph is
/// exactly the one the runtime executes.
ptg::Taskpool build_cholesky_pool(int tiles, int nranks,
                                  CholeskyPoolIds* ids = nullptr);

/// Factor the dense column-major SPD matrix `a` (size n*n, n =
/// tiles*tile_size, replicated on every rank) over the cluster.
TiledCholeskyResult tiled_cholesky(vc::Cluster& cluster,
                                   const std::vector<double>& a,
                                   const TiledCholeskyOptions& opts);

/// Deterministic SPD test matrix: M * M^T + n * I.
std::vector<double> make_spd_matrix(size_t n, uint64_t seed);

/// max |(L L^T)_ij - A_ij| over the full matrix — the factorization
/// residual used to validate results.
double cholesky_residual(const std::vector<double>& a,
                         const std::vector<double>& l, size_t n);

}  // namespace mp::apps
