#include "apps/cholesky.h"

#include <cmath>
#include <mutex>

#include "linalg/cholesky.h"
#include "linalg/gemm.h"
#include "support/error.h"
#include "support/rng.h"

namespace mp::apps {

using ptg::DataBuf;
using ptg::OutRoute;
using ptg::Params;
using ptg::params_of;
using ptg::TaskClass;
using ptg::TaskCtx;
using ptg::TaskKey;

std::vector<double> make_spd_matrix(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> m(n * n);
  for (auto& x : m) x = rng.uniform(-1.0, 1.0);
  std::vector<double> a(n * n, 0.0);
  // A = M * M^T + n * I  (column-major).
  linalg::dgemm('N', 'T', n, n, n, 1.0, m.data(), n, m.data(), n, 0.0,
                a.data(), n);
  for (size_t i = 0; i < n; ++i) a[i * n + i] += static_cast<double>(n);
  return a;
}

double cholesky_residual(const std::vector<double>& a,
                         const std::vector<double>& l, size_t n) {
  std::vector<double> llt(n * n, 0.0);
  linalg::dgemm('N', 'T', n, n, n, 1.0, l.data(), n, l.data(), n, 0.0,
                llt.data(), n);
  double r = 0.0;
  for (size_t i = 0; i < n * n; ++i) {
    r = std::max(r, std::fabs(llt[i] - a[i]));
  }
  return r;
}

ptg::Taskpool build_cholesky_pool(int tiles, int nranks,
                                  CholeskyPoolIds* ids) {
  const int T = tiles;
  MP_REQUIRE(T >= 1 && nranks >= 1, "build_cholesky_pool: bad geometry");
  // 1D cyclic placement over a tile hash (2D block-cyclic in spirit).
  auto owner = [nranks](int i, int j) { return (i * 53 + j) % nranks; };
  auto noop = [](TaskCtx&) {};

  ptg::Taskpool pool;

  TaskClass potrf;
  potrf.name = "POTRF";
  potrf.rank_of = [owner](const Params& p) { return owner(p[0], p[0]); };
  potrf.num_task_inputs = [](const Params& p) { return p[0] == 0 ? 0 : 1; };
  // The last diagonal factor has no trailing panel to feed.
  potrf.num_outputs = [T](const Params& p) { return p[0] + 1 < T ? 1 : 0; };
  potrf.priority = [T](const Params& p) {
    return 3.0 * static_cast<double>(T - p[0]);
  };
  potrf.enumerate_rank = [T, owner](int rank) {
    std::vector<Params> out;
    for (int k = 0; k < T; ++k) {
      if (owner(k, k) == rank) out.push_back(params_of(k));
    }
    return out;
  };
  potrf.body = noop;

  TaskClass trsm;
  trsm.name = "TRSM";
  trsm.rank_of = [owner](const Params& p) { return owner(p[0], p[1]); };
  trsm.num_task_inputs = [](const Params& p) { return p[1] == 0 ? 1 : 2; };
  trsm.num_outputs = [](const Params&) { return 1; };
  trsm.priority = [T](const Params& p) {
    return 2.0 * static_cast<double>(T - p[1]);
  };
  trsm.enumerate_rank = [T, owner](int rank) {
    std::vector<Params> out;
    for (int k = 0; k < T; ++k) {
      for (int i = k + 1; i < T; ++i) {
        if (owner(i, k) == rank) out.push_back(params_of(i, k));
      }
    }
    return out;
  };
  trsm.body = noop;

  TaskClass syrk;
  syrk.name = "SYRK";
  syrk.rank_of = [owner](const Params& p) { return owner(p[0], p[0]); };
  syrk.num_task_inputs = [](const Params& p) { return p[1] == 0 ? 1 : 2; };
  syrk.num_outputs = [](const Params&) { return 1; };
  syrk.priority = [T](const Params& p) {
    return static_cast<double>(T - p[1]);
  };
  syrk.enumerate_rank = [T, owner](int rank) {
    std::vector<Params> out;
    for (int i = 1; i < T; ++i) {
      for (int k = 0; k < i; ++k) {
        if (owner(i, i) == rank) out.push_back(params_of(i, k));
      }
    }
    return out;
  };
  syrk.body = noop;

  TaskClass gemm;
  gemm.name = "GEMM";
  gemm.rank_of = [owner](const Params& p) { return owner(p[0], p[1]); };
  gemm.num_task_inputs = [](const Params& p) { return p[2] == 0 ? 2 : 3; };
  gemm.num_outputs = [](const Params&) { return 1; };
  gemm.priority = [T](const Params& p) {
    return static_cast<double>(T - p[2]);
  };
  gemm.enumerate_rank = [T, owner](int rank) {
    std::vector<Params> out;
    for (int i = 2; i < T; ++i) {
      for (int j = 1; j < i; ++j) {
        for (int k = 0; k < j; ++k) {
          if (owner(i, j) == rank) out.push_back(params_of(i, j, k));
        }
      }
    }
    return out;
  };
  gemm.body = noop;

  const auto potrf_id = pool.add_class(std::move(potrf));
  const auto trsm_id = pool.add_class(std::move(trsm));
  const auto syrk_id = pool.add_class(std::move(syrk));
  const auto gemm_id = pool.add_class(std::move(gemm));

  pool.mutable_cls(potrf_id).route_outputs =
      [T, trsm_id](const Params& p, std::vector<OutRoute>& r) {
        for (int i = p[0] + 1; i < T; ++i) {
          r.push_back({TaskKey{trsm_id, params_of(i, p[0])}, 0, 0});
        }
      };
  pool.mutable_cls(trsm_id).route_outputs =
      [T, syrk_id, gemm_id](const Params& p, std::vector<OutRoute>& r) {
        const int i = p[0], k = p[1];
        r.push_back({TaskKey{syrk_id, params_of(i, k)}, 0, 0});
        for (int j = k + 1; j < i; ++j) {
          r.push_back({TaskKey{gemm_id, params_of(i, j, k)}, 0, 0});
        }
        for (int i2 = i + 1; i2 < T; ++i2) {
          r.push_back({TaskKey{gemm_id, params_of(i2, i, k)}, 1, 0});
        }
      };
  pool.mutable_cls(syrk_id).route_outputs =
      [potrf_id, syrk_id](const Params& p, std::vector<OutRoute>& r) {
        const int i = p[0], k = p[1];
        if (k < i - 1) {
          r.push_back({TaskKey{syrk_id, params_of(i, k + 1)}, 1, 0});
        } else {
          r.push_back({TaskKey{potrf_id, params_of(i)}, 0, 0});
        }
      };
  pool.mutable_cls(gemm_id).route_outputs =
      [trsm_id, gemm_id](const Params& p, std::vector<OutRoute>& r) {
        const int i = p[0], j = p[1], k = p[2];
        if (k < j - 1) {
          r.push_back({TaskKey{gemm_id, params_of(i, j, k + 1)}, 2, 0});
        } else {
          r.push_back({TaskKey{trsm_id, params_of(i, j)}, 1, 0});
        }
      };

  if (ids) *ids = {potrf_id, trsm_id, syrk_id, gemm_id};
  return pool;
}

TiledCholeskyResult tiled_cholesky(vc::Cluster& cluster,
                                   const std::vector<double>& a,
                                   const TiledCholeskyOptions& opts) {
  const int T = opts.tiles;
  const int b = opts.tile_size;
  const size_t n = static_cast<size_t>(T) * static_cast<size_t>(b);
  MP_REQUIRE(T >= 1 && b >= 1, "tiled_cholesky: bad tiling");
  MP_REQUIRE(a.size() == n * n, "tiled_cholesky: matrix size mismatch");

  TiledCholeskyResult result;
  result.l.assign(n * n, 0.0);
  std::mutex merge_mu;

  const std::vector<double>* A = &a;
  std::vector<double>* L = &result.l;

  cluster.run([&](vc::RankCtx& rctx) {
    const int nranks = rctx.nranks();
    const size_t bs = static_cast<size_t>(b);
    auto load_tile = [A, n, bs](int ti, int tj) {
      auto buf = ptg::make_buf(bs * bs);
      for (size_t c = 0; c < bs; ++c) {
        for (size_t r = 0; r < bs; ++r) {
          (*buf)[c * bs + r] =
              (*A)[(tj * bs + c) * n + (ti * bs + r)];
        }
      }
      return buf;
    };
    // Final tiles have unique writers, so no lock is needed.
    auto store_tile = [L, n, bs](int ti, int tj, const DataBuf& buf) {
      for (size_t c = 0; c < bs; ++c) {
        for (size_t r = 0; r < bs; ++r) {
          (*L)[(tj * bs + c) * n + (ti * bs + r)] = (*buf)[c * bs + r];
        }
      }
    };

    // Structure (placement, thresholds, dataflow) comes from the shared
    // builder — the same pool tools/mp-verify statically verifies — and
    // only the numeric kernels are installed here.
    CholeskyPoolIds ids;
    ptg::Taskpool pool = build_cholesky_pool(T, nranks, &ids);

    pool.mutable_cls(ids.potrf).body = [load_tile, store_tile, bs](
                                           TaskCtx& t) {
      const int k = t.params()[0];
      DataBuf tile = (k == 0) ? load_tile(0, 0) : t.take_input(0);
      linalg::potrf_lower(bs, tile->data(), bs);
      store_tile(k, k, tile);
      t.set_output(0, std::move(tile));
    };
    pool.mutable_cls(ids.trsm).body = [load_tile, store_tile, bs](
                                          TaskCtx& t) {
      const int i = t.params()[0], k = t.params()[1];
      const DataBuf& lkk = t.input(0);
      DataBuf tile = (k == 0) ? load_tile(i, 0) : t.take_input(1);
      linalg::trsm_rlt(bs, bs, lkk->data(), bs, tile->data(), bs);
      store_tile(i, k, tile);
      t.set_output(0, std::move(tile));
    };
    pool.mutable_cls(ids.syrk).body = [load_tile, bs](TaskCtx& t) {
      const int i = t.params()[0], k = t.params()[1];
      const DataBuf& panel = t.input(0);
      DataBuf diag = (k == 0) ? load_tile(i, i) : t.take_input(1);
      linalg::syrk_ln(bs, bs, panel->data(), bs, diag->data(), bs);
      t.set_output(0, std::move(diag));
    };
    pool.mutable_cls(ids.gemm).body = [load_tile, bs](TaskCtx& t) {
      const int i = t.params()[0], j = t.params()[1], k = t.params()[2];
      const DataBuf& tik = t.input(0);
      const DataBuf& tjk = t.input(1);
      DataBuf tile = (k == 0) ? load_tile(i, j) : t.take_input(2);
      linalg::dgemm('N', 'T', bs, bs, bs, -1.0, tik->data(), bs, tjk->data(),
                    bs, 1.0, tile->data(), bs);
      t.set_output(0, std::move(tile));
    };

    ptg::Options ropts;
    ropts.num_workers = opts.workers_per_rank;
    ropts.policy = opts.policy;
    ropts.enable_tracing = opts.enable_tracing;
    ptg::Context ctx(rctx, pool, ropts);
    ctx.run();

    std::lock_guard lock(merge_mu);
    result.tasks_executed += ctx.tasks_executed();
    result.remote_activations += ctx.remote_activations_sent();
    if (opts.enable_tracing) result.trace.append(ctx.trace());
  });

  result.trace.normalize();
  return result;
}

}  // namespace mp::apps
