#include "linalg/cholesky.h"

#include <cmath>

#include "support/error.h"

namespace mp::linalg {

void potrf_lower(size_t n, double* a, size_t lda) {
  for (size_t j = 0; j < n; ++j) {
    double d = a[j * lda + j];
    for (size_t k = 0; k < j; ++k) {
      const double l = a[k * lda + j];
      d -= l * l;
    }
    if (d <= 0.0) throw DataError("potrf: matrix not positive definite");
    const double ljj = std::sqrt(d);
    a[j * lda + j] = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double s = a[j * lda + i];
      for (size_t k = 0; k < j; ++k) {
        s -= a[k * lda + i] * a[k * lda + j];
      }
      a[j * lda + i] = s / ljj;
    }
    // Zero the strictly-upper part so tiles compose cleanly.
    for (size_t i = 0; i < j; ++i) a[j * lda + i] = 0.0;
  }
}

void trsm_rlt(size_t m, size_t n, const double* l, size_t ldl, double* b,
              size_t ldb) {
  // Solve X * L^T = B column by column of L (forward order): for each
  // column j of the result, x_j = (b_j - sum_{k<j} x_k * L(j,k)) / L(j,j).
  for (size_t j = 0; j < n; ++j) {
    const double ljj = l[j * ldl + j];
    MP_REQUIRE(ljj != 0.0, "trsm: singular triangular factor");
    for (size_t i = 0; i < m; ++i) {
      double s = b[j * ldb + i];
      for (size_t k = 0; k < j; ++k) {
        s -= b[k * ldb + i] * l[k * ldl + j];
      }
      b[j * ldb + i] = s / ljj;
    }
  }
}

void syrk_ln(size_t n, size_t k, const double* a, size_t lda, double* c,
             size_t ldc) {
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = j; i < n; ++i) {  // lower triangle only
      double s = 0.0;
      for (size_t kk = 0; kk < k; ++kk) {
        s += a[kk * lda + i] * a[kk * lda + j];
      }
      c[j * ldc + i] -= s;
    }
  }
}

}  // namespace mp::linalg
