// Unblocked LAPACK-style kernels for the tiled Cholesky example: PaRSEC
// grew out of dense linear algebra (DPLASMA), so the repository includes a
// DPLASMA-style tiled POTRF over the PTG runtime to demonstrate that the
// runtime is not CC-specific. Column-major, lower-triangular convention.
#pragma once

#include <cstddef>

namespace mp::linalg {

/// In-place lower Cholesky of the n x n tile A (ld = lda): A = L * L^T,
/// L written to the lower triangle. Throws DataError if A is not positive
/// definite.
void potrf_lower(size_t n, double* a, size_t lda);

/// Triangular solve for the panel update: B <- B * L^-T, where L is the
/// n x n lower-triangular tile of A and B is m x n (the DTRSM
/// 'R','L','T','N' case of tiled POTRF).
void trsm_rlt(size_t m, size_t n, const double* l, size_t ldl, double* b,
              size_t ldb);

/// Symmetric rank-k update of a diagonal tile: C <- C - A * A^T with
/// C n x n (lower triangle referenced), A n x k (DSYRK 'L','N', alpha=-1,
/// beta=1).
void syrk_ln(size_t n, size_t k, const double* a, size_t lda, double* c,
             size_t ldc);

}  // namespace mp::linalg
