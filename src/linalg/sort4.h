// The TCE "SORT" kernels. Despite the name these perform no sorting: they
// remap (permute) the indices of a dense 4-index block and scale it by a
// factor, exactly like NWChem's tce_sort_4.
//
// Convention: the input block holds element (i1,i2,i3,i4) at linear offset
//   ((i1*d2 + i2)*d3 + i3)*d4 + i4            (row-major over the 4 indices,
// matching the FORTRAN code's explicit linearization). The permutation
// p = {p[0],p[1],p[2],p[3]} states, for each output index position, which
// input index it takes: output index j runs over input dimension p[j].
#pragma once

#include <array>
#include <cstddef>

namespace mp::linalg {

/// sorted <- factor * permute(unsorted).
/// dims are the extents of the *input* block; perm[j] in {0,1,2,3} selects
/// which input axis becomes output axis j. perm must be a permutation.
void sort_4(const double* unsorted, double* sorted,
            const std::array<size_t, 4>& dims,
            const std::array<int, 4>& perm, double factor);

/// sorted += factor * permute(unsorted) (the accumulating flavour used when
/// several guarded SORTs share one output buffer).
void sort_4_acc(const double* unsorted, double* sorted,
                const std::array<size_t, 4>& dims,
                const std::array<int, 4>& perm, double factor);

/// Number of elements moved by a sort_4 on a block of the given dims;
/// used by the simulator's memory-bound cost model.
inline size_t sort4_elems(const std::array<size_t, 4>& dims) {
  return dims[0] * dims[1] * dims[2] * dims[3];
}

/// True when `perm` takes one of the specialized fast paths (the identity
/// or a transpose-like rotation such as {2,3,0,1}); exposed so tests and
/// benchmarks can target both code paths explicitly.
bool sort4_is_fast_path(const std::array<int, 4>& perm);

/// Always-generic implementations, bypassing the fast-path dispatch. The
/// fast paths must agree with these bit-for-bit (each output element is the
/// same single `factor * in` product either way); tests enforce it.
void sort_4_reference(const double* unsorted, double* sorted,
                      const std::array<size_t, 4>& dims,
                      const std::array<int, 4>& perm, double factor);
void sort_4_acc_reference(const double* unsorted, double* sorted,
                          const std::array<size_t, 4>& dims,
                          const std::array<int, 4>& perm, double factor);

}  // namespace mp::linalg
