// Dense column-major matrix of doubles.
//
// Column-major is chosen to match the FORTRAN layout of the TCE-generated
// NWChem code this project reproduces; the GEMM kernels below use the same
// convention as the reference BLAS ('T'/'N' flags).
#pragma once

#include <cstddef>
#include <vector>

#include "support/error.h"

namespace mp::linalg {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  double& operator()(size_t i, size_t j) {
    MP_DCHECK(i < rows_ && j < cols_, "matrix index out of range");
    return data_[j * rows_ + i];
  }
  double operator()(size_t i, size_t j) const {
    MP_DCHECK(i < rows_ && j < cols_, "matrix index out of range");
    return data_[j * rows_ + i];
  }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Frobenius norm.
  double norm() const;

  /// Max |a_ij - b_ij| between two same-shape matrices.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace mp::linalg
