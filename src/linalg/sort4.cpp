#include "linalg/sort4.h"

#include <array>

#include "support/error.h"

namespace mp::linalg {
namespace {

void check_perm(const std::array<int, 4>& perm) {
  int seen = 0;
  for (int p : perm) {
    MP_REQUIRE(p >= 0 && p < 4, "sort_4: perm entry out of range");
    seen |= 1 << p;
  }
  MP_REQUIRE(seen == 0xF, "sort_4: perm is not a permutation");
}

template <bool kAccumulate>
void sort4_impl(const double* unsorted, double* sorted,
                const std::array<size_t, 4>& dims,
                const std::array<int, 4>& perm, double factor) {
  check_perm(perm);

  // Strides of the input axes in the input linearization.
  std::array<size_t, 4> in_stride;
  in_stride[3] = 1;
  in_stride[2] = dims[3];
  in_stride[1] = dims[3] * dims[2];
  in_stride[0] = dims[3] * dims[2] * dims[1];

  // Output dims follow the permutation; output strides likewise.
  std::array<size_t, 4> odims;
  for (int j = 0; j < 4; ++j) odims[j] = dims[static_cast<size_t>(perm[j])];
  std::array<size_t, 4> out_stride_for_in{};  // stride of input axis a in output
  {
    std::array<size_t, 4> ostride;
    ostride[3] = 1;
    ostride[2] = odims[3];
    ostride[1] = odims[3] * odims[2];
    ostride[0] = odims[3] * odims[2] * odims[1];
    for (int j = 0; j < 4; ++j) {
      out_stride_for_in[static_cast<size_t>(perm[j])] = ostride[j];
    }
  }

  for (size_t i0 = 0; i0 < dims[0]; ++i0) {
    for (size_t i1 = 0; i1 < dims[1]; ++i1) {
      for (size_t i2 = 0; i2 < dims[2]; ++i2) {
        const double* in = unsorted + i0 * in_stride[0] + i1 * in_stride[1] +
                           i2 * in_stride[2];
        double* out_base = sorted + i0 * out_stride_for_in[0] +
                           i1 * out_stride_for_in[1] +
                           i2 * out_stride_for_in[2];
        const size_t os3 = out_stride_for_in[3];
        for (size_t i3 = 0; i3 < dims[3]; ++i3) {
          if constexpr (kAccumulate) {
            out_base[i3 * os3] += factor * in[i3];
          } else {
            out_base[i3 * os3] = factor * in[i3];
          }
        }
      }
    }
  }
}

}  // namespace

void sort_4(const double* unsorted, double* sorted,
            const std::array<size_t, 4>& dims,
            const std::array<int, 4>& perm, double factor) {
  sort4_impl<false>(unsorted, sorted, dims, perm, factor);
}

void sort_4_acc(const double* unsorted, double* sorted,
                const std::array<size_t, 4>& dims,
                const std::array<int, 4>& perm, double factor) {
  sort4_impl<true>(unsorted, sorted, dims, perm, factor);
}

}  // namespace mp::linalg
