#include "linalg/sort4.h"

#include <algorithm>
#include <array>

#include "support/error.h"

namespace mp::linalg {
namespace {

void check_perm(const std::array<int, 4>& perm) {
  int seen = 0;
  for (int p : perm) {
    MP_REQUIRE(p >= 0 && p < 4, "sort_4: perm entry out of range");
    seen |= 1 << p;
  }
  MP_REQUIRE(seen == 0xF, "sort_4: perm is not a permutation");
}

// ---- fast path 1: identity --------------------------------------------------
template <bool kAccumulate>
void sort4_identity(const double* __restrict in, double* __restrict out,
                    size_t n, double factor) {
  for (size_t i = 0; i < n; ++i) {
    if constexpr (kAccumulate) {
      out[i] += factor * in[i];
    } else {
      out[i] = factor * in[i];
    }
  }
}

// ---- fast path 2: transpose-like permutations -------------------------------
// A rotation perm {s, s+1, .., 3, 0, .., s-1} is exactly a 2-D transpose of
// the input viewed as an R x C row-major matrix with R = d0*..*d(s-1) and
// C = ds*..*d3:  out[c*R + r] = factor * in[r*C + c]. The transpose is
// tiled through a padded on-stack scratch tile: the block dims are usually
// powers of two, so reading or writing at the raw row stride would land
// every access in the same few L1 sets (2 KiB stride -> 12-way thrash);
// staging through the scratch makes both the input pass and the output
// pass contiguous in main memory, with the strided accesses confined to
// the conflict-free scratch (stride padded to 33 doubles).
constexpr size_t kTransTile = 32;

template <bool kAccumulate>
void sort4_transpose(const double* __restrict in, double* __restrict out,
                     size_t rows, size_t cols, double factor) {
  constexpr size_t kS = kTransTile + 1;  // pad to break power-of-2 aliasing
  alignas(64) double tile[kTransTile * kS];
  for (size_t r0 = 0; r0 < rows; r0 += kTransTile) {
    const size_t r1 = std::min(rows, r0 + kTransTile);
    for (size_t c0 = 0; c0 < cols; c0 += kTransTile) {
      const size_t c1 = std::min(cols, c0 + kTransTile);
      for (size_t r = r0; r < r1; ++r) {
        const double* __restrict src = in + r * cols;
        double* __restrict dst = tile + (r - r0) * kS;
        for (size_t c = c0; c < c1; ++c) dst[c - c0] = factor * src[c];
      }
      for (size_t c = c0; c < c1; ++c) {
        double* __restrict dst = out + c * rows;
        const double* __restrict src = tile + (c - c0);
        for (size_t r = r0; r < r1; ++r) {
          if constexpr (kAccumulate) {
            dst[r] += src[(r - r0) * kS];
          } else {
            dst[r] = src[(r - r0) * kS];
          }
        }
      }
    }
  }
}

/// Returns the rotation split point s (1..3) when perm is
/// {s, s+1, .., 3, 0, .., s-1}; 0 when perm is the identity; -1 otherwise.
int rotation_split(const std::array<int, 4>& perm) {
  const int s = perm[0];
  for (int j = 1; j < 4; ++j) {
    if (perm[j] != (s + j) % 4) return -1;
  }
  return s;
}

// ---- generic path -----------------------------------------------------------
template <bool kAccumulate>
void sort4_generic(const double* unsorted, double* sorted,
                   const std::array<size_t, 4>& dims,
                   const std::array<int, 4>& perm, double factor) {
  // Strides of the input axes in the input linearization.
  std::array<size_t, 4> in_stride;
  in_stride[3] = 1;
  in_stride[2] = dims[3];
  in_stride[1] = dims[3] * dims[2];
  in_stride[0] = dims[3] * dims[2] * dims[1];

  // Output dims follow the permutation; output strides likewise.
  std::array<size_t, 4> odims;
  for (int j = 0; j < 4; ++j) odims[j] = dims[static_cast<size_t>(perm[j])];
  std::array<size_t, 4> out_stride_for_in{};  // stride of input axis a in output
  {
    std::array<size_t, 4> ostride;
    ostride[3] = 1;
    ostride[2] = odims[3];
    ostride[1] = odims[3] * odims[2];
    ostride[0] = odims[3] * odims[2] * odims[1];
    for (int j = 0; j < 4; ++j) {
      out_stride_for_in[static_cast<size_t>(perm[j])] = ostride[j];
    }
  }

  for (size_t i0 = 0; i0 < dims[0]; ++i0) {
    for (size_t i1 = 0; i1 < dims[1]; ++i1) {
      for (size_t i2 = 0; i2 < dims[2]; ++i2) {
        const double* in = unsorted + i0 * in_stride[0] + i1 * in_stride[1] +
                           i2 * in_stride[2];
        double* out_base = sorted + i0 * out_stride_for_in[0] +
                           i1 * out_stride_for_in[1] +
                           i2 * out_stride_for_in[2];
        const size_t os3 = out_stride_for_in[3];
        for (size_t i3 = 0; i3 < dims[3]; ++i3) {
          if constexpr (kAccumulate) {
            out_base[i3 * os3] += factor * in[i3];
          } else {
            out_base[i3 * os3] = factor * in[i3];
          }
        }
      }
    }
  }
}

template <bool kAccumulate>
void sort4_impl(const double* unsorted, double* sorted,
                const std::array<size_t, 4>& dims,
                const std::array<int, 4>& perm, double factor) {
  check_perm(perm);

  const int s = rotation_split(perm);
  if (s == 0) {
    sort4_identity<kAccumulate>(unsorted, sorted, sort4_elems(dims), factor);
    return;
  }
  if (s > 0) {
    size_t rows = 1, cols = 1;
    for (int j = 0; j < s; ++j) rows *= dims[static_cast<size_t>(j)];
    for (int j = s; j < 4; ++j) cols *= dims[static_cast<size_t>(j)];
    sort4_transpose<kAccumulate>(unsorted, sorted, rows, cols, factor);
    return;
  }
  sort4_generic<kAccumulate>(unsorted, sorted, dims, perm, factor);
}

}  // namespace

void sort_4(const double* unsorted, double* sorted,
            const std::array<size_t, 4>& dims,
            const std::array<int, 4>& perm, double factor) {
  sort4_impl<false>(unsorted, sorted, dims, perm, factor);
}

void sort_4_acc(const double* unsorted, double* sorted,
                const std::array<size_t, 4>& dims,
                const std::array<int, 4>& perm, double factor) {
  sort4_impl<true>(unsorted, sorted, dims, perm, factor);
}

bool sort4_is_fast_path(const std::array<int, 4>& perm) {
  return rotation_split(perm) >= 0;
}

void sort_4_reference(const double* unsorted, double* sorted,
                      const std::array<size_t, 4>& dims,
                      const std::array<int, 4>& perm, double factor) {
  check_perm(perm);
  sort4_generic<false>(unsorted, sorted, dims, perm, factor);
}

void sort_4_acc_reference(const double* unsorted, double* sorted,
                          const std::array<size_t, 4>& dims,
                          const std::array<int, 4>& perm, double factor) {
  check_perm(perm);
  sort4_generic<true>(unsorted, sorted, dims, perm, factor);
}

}  // namespace mp::linalg
