// Reference-BLAS-compatible double-precision GEMM and the BLAS-1 helpers the
// TCE-generated code uses (DFILL, DAXPY). Column-major throughout.
//
// This is a from-scratch blocked implementation (no external BLAS is
// available in the reproduction environment). It is cache-blocked and good
// enough for the block sizes the CC workloads produce (tiles of 8..64).
#pragma once

#include <cstddef>

namespace mp::linalg {

/// C(m,n) = alpha * op(A) * op(B) + beta * C
/// transa/transb: 'N' (no transpose) or 'T' (transpose).
/// lda/ldb/ldc are the leading dimensions of the column-major arrays.
void dgemm(char transa, char transb, size_t m, size_t n, size_t k,
           double alpha, const double* a, size_t lda, const double* b,
           size_t ldb, double beta, double* c, size_t ldc);

/// x[0..n) = v  (the TCE DFILL).
void dfill(size_t n, double v, double* x);

/// y += alpha * x.
void daxpy(size_t n, double alpha, const double* x, double* y);

/// dot(x, y).
double ddot(size_t n, const double* x, const double* y);

/// Flop count of a GEMM call (2*m*n*k), used by the simulator cost model.
inline double gemm_flops(size_t m, size_t n, size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace mp::linalg
