#include "linalg/matrix.h"

#include <cmath>

namespace mp::linalg {

double Matrix::norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  MP_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
             "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

}  // namespace mp::linalg
