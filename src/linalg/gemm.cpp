#include "linalg/gemm.h"

#include <algorithm>
#include <vector>

#include "support/error.h"

namespace mp::linalg {
namespace {

// Cache-block sizes: the packed A panel (kKc x kMc doubles) fits in L1/L2
// comfortably on any post-2010 x86 core.
constexpr size_t kMc = 64;
constexpr size_t kKc = 128;

// Packs a kMc x kKc block of op(A) into row-panel order so the inner kernel
// streams it contiguously.
void pack_a(bool trans, const double* a, size_t lda, size_t i0, size_t k0,
            size_t mb, size_t kb, double* pack) {
  for (size_t k = 0; k < kb; ++k) {
    for (size_t i = 0; i < mb; ++i) {
      // op(A)(i0+i, k0+k)
      const double v = trans ? a[(i0 + i) * lda + (k0 + k)]
                             : a[(k0 + k) * lda + (i0 + i)];
      pack[k * mb + i] = v;
    }
  }
}

}  // namespace

void dgemm(char transa, char transb, size_t m, size_t n, size_t k,
           double alpha, const double* a, size_t lda, const double* b,
           size_t ldb, double beta, double* c, size_t ldc) {
  MP_REQUIRE(transa == 'N' || transa == 'T' || transa == 'n' || transa == 't',
             "dgemm: bad transa");
  MP_REQUIRE(transb == 'N' || transb == 'T' || transb == 'n' || transb == 't',
             "dgemm: bad transb");
  const bool ta = (transa == 'T' || transa == 't');
  const bool tb = (transb == 'T' || transb == 't');
  MP_DCHECK(ldc >= std::max<size_t>(1, m), "dgemm: ldc too small");

  // Scale C by beta first (handles alpha == 0 and empty K too).
  if (beta != 1.0) {
    for (size_t j = 0; j < n; ++j) {
      double* cj = c + j * ldc;
      if (beta == 0.0) {
        std::fill(cj, cj + m, 0.0);
      } else {
        for (size_t i = 0; i < m; ++i) cj[i] *= beta;
      }
    }
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;

  std::vector<double> pack(kMc * kKc);

  for (size_t k0 = 0; k0 < k; k0 += kKc) {
    const size_t kb = std::min(kKc, k - k0);
    for (size_t i0 = 0; i0 < m; i0 += kMc) {
      const size_t mb = std::min(kMc, m - i0);
      pack_a(ta, a, lda, i0, k0, mb, kb, pack.data());
      for (size_t j = 0; j < n; ++j) {
        double* __restrict cj = c + j * ldc + i0;
        for (size_t kk = 0; kk < kb; ++kk) {
          // op(B)(k0+kk, j)
          const double bkj = tb ? b[(k0 + kk) * ldb + j]  // B is n x k
                                : b[j * ldb + (k0 + kk)];
          const double w = alpha * bkj;
          if (w == 0.0) continue;
          const double* __restrict ap = pack.data() + kk * mb;
          for (size_t i = 0; i < mb; ++i) cj[i] += w * ap[i];
        }
      }
    }
  }
}

void dfill(size_t n, double v, double* x) { std::fill(x, x + n, v); }

void daxpy(size_t n, double alpha, const double* x, double* y) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double ddot(size_t n, const double* x, const double* y) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

}  // namespace mp::linalg
