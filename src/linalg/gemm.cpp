#include "linalg/gemm.h"

#include <algorithm>

#include "support/aligned_buf.h"
#include "support/error.h"

#if defined(__SSE2__)
#include <immintrin.h>
#endif

namespace mp::linalg {
namespace {

// BLIS-style cache blocking (see DESIGN.md "Kernel & scheduler hot paths"):
//   kMr x kNr — the register tile held in accumulators by the microkernel;
//   kMc x kKc — the packed A block, sized for L2;
//   kKc x kNc — the packed B panel, sized to stay resident in L3 while the
//               ic loop sweeps the whole M dimension over it.
// Loop order is NC -> KC -> MC: for each B panel we stream every A block
// against it, so B is loaded from memory once per KC pass.
// The register tile must fit the accumulators in architectural vector
// registers or the microkernel spills and loses to the naive loop:
//   AVX-512: 16x6 doubles = 12 zmm of 32;  AVX/AVX2: 8x6 = 12 ymm of 16;
//   SSE2 baseline: 4x4 = 8 xmm of 16. The accumulators are explicit named
//   SIMD variables because GCC will not promote an accumulator array out
//   of the stack even when the loops fully unroll.
#if defined(__AVX512F__)
constexpr size_t kMr = 16;
constexpr size_t kNr = 6;
#elif defined(__AVX__)
constexpr size_t kMr = 8;
constexpr size_t kNr = 6;
#else
constexpr size_t kMr = 4;
constexpr size_t kNr = 4;
#endif
constexpr size_t kMc = 128;  // multiple of kMr
constexpr size_t kKc = 256;
constexpr size_t kNc = 768;  // multiple of kNr; B panel = 1.5 MiB

static_assert(kMc % kMr == 0, "kMc must be a multiple of kMr");
static_assert(kNc % kNr == 0, "kNc must be a multiple of kNr");

// Packs op(A)(i0..i0+mb, k0..k0+kb) into row panels of height kMr:
// pack[panel][k][r] with r < kMr, zero-padded so the microkernel never
// needs an M edge case.
void pack_a(bool trans, const double* __restrict a, size_t lda, size_t i0,
            size_t k0, size_t mb, size_t kb, double* __restrict pack) {
  for (size_t ip = 0; ip < mb; ip += kMr) {
    const size_t mr = std::min(kMr, mb - ip);
    double* __restrict dst = pack + ip * kb;
    if (!trans) {
      // op(A)(i,k) = a[k*lda + i]: each k column is contiguous in A.
      for (size_t k = 0; k < kb; ++k) {
        const double* __restrict src = a + (k0 + k) * lda + (i0 + ip);
        size_t r = 0;
        for (; r < mr; ++r) dst[k * kMr + r] = src[r];
        for (; r < kMr; ++r) dst[k * kMr + r] = 0.0;
      }
    } else {
      // op(A)(i,k) = a[i*lda + k]: each output row is contiguous in A.
      for (size_t r = 0; r < mr; ++r) {
        const double* __restrict src = a + (i0 + ip + r) * lda + k0;
        for (size_t k = 0; k < kb; ++k) dst[k * kMr + r] = src[k];
      }
      for (size_t r = mr; r < kMr; ++r) {
        for (size_t k = 0; k < kb; ++k) dst[k * kMr + r] = 0.0;
      }
    }
  }
}

// Packs op(B)(k0..k0+kb, j0..j0+nb) into column panels of width kNr:
// pack[panel][k][c] with c < kNr, zero-padded in N.
void pack_b(bool trans, const double* __restrict b, size_t ldb, size_t k0,
            size_t j0, size_t kb, size_t nb, double* __restrict pack) {
  for (size_t jp = 0; jp < nb; jp += kNr) {
    const size_t nr = std::min(kNr, nb - jp);
    double* __restrict dst = pack + jp * kb;
    if (!trans) {
      // op(B)(k,j) = b[j*ldb + k]: each output column is contiguous in B.
      for (size_t c = 0; c < nr; ++c) {
        const double* __restrict src = b + (j0 + jp + c) * ldb + k0;
        for (size_t k = 0; k < kb; ++k) dst[k * kNr + c] = src[k];
      }
      for (size_t c = nr; c < kNr; ++c) {
        for (size_t k = 0; k < kb; ++k) dst[k * kNr + c] = 0.0;
      }
    } else {
      // op(B)(k,j) = b[k*ldb + j]: each k row is contiguous in B.
      for (size_t k = 0; k < kb; ++k) {
        const double* __restrict src = b + (k0 + k) * ldb + (j0 + jp);
        size_t c = 0;
        for (; c < nr; ++c) dst[k * kNr + c] = src[c];
        for (; c < kNr; ++c) dst[k * kNr + c] = 0.0;
      }
    }
  }
}

// The register-blocked microkernel: acc(kMr x kNr) = Ap-panel * Bp-panel
// over kb ranks, acc column-major (i fastest). One variant per ISA tier.
#if defined(__AVX512F__)

inline void microkernel(size_t kb, const double* __restrict ap,
                        const double* __restrict bp, double* __restrict acc) {
  __m512d c0a = _mm512_setzero_pd(), c0b = _mm512_setzero_pd();
  __m512d c1a = _mm512_setzero_pd(), c1b = _mm512_setzero_pd();
  __m512d c2a = _mm512_setzero_pd(), c2b = _mm512_setzero_pd();
  __m512d c3a = _mm512_setzero_pd(), c3b = _mm512_setzero_pd();
  __m512d c4a = _mm512_setzero_pd(), c4b = _mm512_setzero_pd();
  __m512d c5a = _mm512_setzero_pd(), c5b = _mm512_setzero_pd();
  for (size_t k = 0; k < kb; ++k) {
    const __m512d a0 = _mm512_loadu_pd(ap);
    const __m512d a1 = _mm512_loadu_pd(ap + 8);
    __m512d b;
    b = _mm512_set1_pd(bp[0]);
    c0a = _mm512_fmadd_pd(a0, b, c0a);
    c0b = _mm512_fmadd_pd(a1, b, c0b);
    b = _mm512_set1_pd(bp[1]);
    c1a = _mm512_fmadd_pd(a0, b, c1a);
    c1b = _mm512_fmadd_pd(a1, b, c1b);
    b = _mm512_set1_pd(bp[2]);
    c2a = _mm512_fmadd_pd(a0, b, c2a);
    c2b = _mm512_fmadd_pd(a1, b, c2b);
    b = _mm512_set1_pd(bp[3]);
    c3a = _mm512_fmadd_pd(a0, b, c3a);
    c3b = _mm512_fmadd_pd(a1, b, c3b);
    b = _mm512_set1_pd(bp[4]);
    c4a = _mm512_fmadd_pd(a0, b, c4a);
    c4b = _mm512_fmadd_pd(a1, b, c4b);
    b = _mm512_set1_pd(bp[5]);
    c5a = _mm512_fmadd_pd(a0, b, c5a);
    c5b = _mm512_fmadd_pd(a1, b, c5b);
    ap += kMr;
    bp += kNr;
  }
  _mm512_storeu_pd(acc + 0 * kMr, c0a);
  _mm512_storeu_pd(acc + 0 * kMr + 8, c0b);
  _mm512_storeu_pd(acc + 1 * kMr, c1a);
  _mm512_storeu_pd(acc + 1 * kMr + 8, c1b);
  _mm512_storeu_pd(acc + 2 * kMr, c2a);
  _mm512_storeu_pd(acc + 2 * kMr + 8, c2b);
  _mm512_storeu_pd(acc + 3 * kMr, c3a);
  _mm512_storeu_pd(acc + 3 * kMr + 8, c3b);
  _mm512_storeu_pd(acc + 4 * kMr, c4a);
  _mm512_storeu_pd(acc + 4 * kMr + 8, c4b);
  _mm512_storeu_pd(acc + 5 * kMr, c5a);
  _mm512_storeu_pd(acc + 5 * kMr + 8, c5b);
}

#elif defined(__AVX__)

#if defined(__FMA__)
#define MP_FMADD(a, b, c) _mm256_fmadd_pd(a, b, c)
#else
#define MP_FMADD(a, b, c) _mm256_add_pd(_mm256_mul_pd(a, b), c)
#endif

inline void microkernel(size_t kb, const double* __restrict ap,
                        const double* __restrict bp, double* __restrict acc) {
  __m256d c0a = _mm256_setzero_pd(), c0b = _mm256_setzero_pd();
  __m256d c1a = _mm256_setzero_pd(), c1b = _mm256_setzero_pd();
  __m256d c2a = _mm256_setzero_pd(), c2b = _mm256_setzero_pd();
  __m256d c3a = _mm256_setzero_pd(), c3b = _mm256_setzero_pd();
  __m256d c4a = _mm256_setzero_pd(), c4b = _mm256_setzero_pd();
  __m256d c5a = _mm256_setzero_pd(), c5b = _mm256_setzero_pd();
  for (size_t k = 0; k < kb; ++k) {
    const __m256d a0 = _mm256_loadu_pd(ap);
    const __m256d a1 = _mm256_loadu_pd(ap + 4);
    __m256d b;
    b = _mm256_set1_pd(bp[0]);
    c0a = MP_FMADD(a0, b, c0a);
    c0b = MP_FMADD(a1, b, c0b);
    b = _mm256_set1_pd(bp[1]);
    c1a = MP_FMADD(a0, b, c1a);
    c1b = MP_FMADD(a1, b, c1b);
    b = _mm256_set1_pd(bp[2]);
    c2a = MP_FMADD(a0, b, c2a);
    c2b = MP_FMADD(a1, b, c2b);
    b = _mm256_set1_pd(bp[3]);
    c3a = MP_FMADD(a0, b, c3a);
    c3b = MP_FMADD(a1, b, c3b);
    b = _mm256_set1_pd(bp[4]);
    c4a = MP_FMADD(a0, b, c4a);
    c4b = MP_FMADD(a1, b, c4b);
    b = _mm256_set1_pd(bp[5]);
    c5a = MP_FMADD(a0, b, c5a);
    c5b = MP_FMADD(a1, b, c5b);
    ap += kMr;
    bp += kNr;
  }
  _mm256_storeu_pd(acc + 0 * kMr, c0a);
  _mm256_storeu_pd(acc + 0 * kMr + 4, c0b);
  _mm256_storeu_pd(acc + 1 * kMr, c1a);
  _mm256_storeu_pd(acc + 1 * kMr + 4, c1b);
  _mm256_storeu_pd(acc + 2 * kMr, c2a);
  _mm256_storeu_pd(acc + 2 * kMr + 4, c2b);
  _mm256_storeu_pd(acc + 3 * kMr, c3a);
  _mm256_storeu_pd(acc + 3 * kMr + 4, c3b);
  _mm256_storeu_pd(acc + 4 * kMr, c4a);
  _mm256_storeu_pd(acc + 4 * kMr + 4, c4b);
  _mm256_storeu_pd(acc + 5 * kMr, c5a);
  _mm256_storeu_pd(acc + 5 * kMr + 4, c5b);
}

#undef MP_FMADD

#elif defined(__SSE2__)

inline void microkernel(size_t kb, const double* __restrict ap,
                        const double* __restrict bp, double* __restrict acc) {
  __m128d c0a = _mm_setzero_pd(), c0b = _mm_setzero_pd();
  __m128d c1a = _mm_setzero_pd(), c1b = _mm_setzero_pd();
  __m128d c2a = _mm_setzero_pd(), c2b = _mm_setzero_pd();
  __m128d c3a = _mm_setzero_pd(), c3b = _mm_setzero_pd();
  for (size_t k = 0; k < kb; ++k) {
    const __m128d a0 = _mm_loadu_pd(ap);
    const __m128d a1 = _mm_loadu_pd(ap + 2);
    __m128d b;
    b = _mm_set1_pd(bp[0]);
    c0a = _mm_add_pd(c0a, _mm_mul_pd(a0, b));
    c0b = _mm_add_pd(c0b, _mm_mul_pd(a1, b));
    b = _mm_set1_pd(bp[1]);
    c1a = _mm_add_pd(c1a, _mm_mul_pd(a0, b));
    c1b = _mm_add_pd(c1b, _mm_mul_pd(a1, b));
    b = _mm_set1_pd(bp[2]);
    c2a = _mm_add_pd(c2a, _mm_mul_pd(a0, b));
    c2b = _mm_add_pd(c2b, _mm_mul_pd(a1, b));
    b = _mm_set1_pd(bp[3]);
    c3a = _mm_add_pd(c3a, _mm_mul_pd(a0, b));
    c3b = _mm_add_pd(c3b, _mm_mul_pd(a1, b));
    ap += kMr;
    bp += kNr;
  }
  _mm_storeu_pd(acc + 0 * kMr, c0a);
  _mm_storeu_pd(acc + 0 * kMr + 2, c0b);
  _mm_storeu_pd(acc + 1 * kMr, c1a);
  _mm_storeu_pd(acc + 1 * kMr + 2, c1b);
  _mm_storeu_pd(acc + 2 * kMr, c2a);
  _mm_storeu_pd(acc + 2 * kMr + 2, c2b);
  _mm_storeu_pd(acc + 3 * kMr, c3a);
  _mm_storeu_pd(acc + 3 * kMr + 2, c3b);
}

#else

// Scalar fallback for non-x86 hosts.
inline void microkernel(size_t kb, const double* __restrict ap,
                        const double* __restrict bp, double* __restrict acc) {
  double c[kMr * kNr] = {};
  for (size_t k = 0; k < kb; ++k) {
    for (size_t j = 0; j < kNr; ++j) {
      const double bj = bp[j];
      for (size_t i = 0; i < kMr; ++i) c[j * kMr + i] += ap[i] * bj;
    }
    ap += kMr;
    bp += kNr;
  }
  for (size_t x = 0; x < kMr * kNr; ++x) acc[x] = c[x];
}

#endif

// Writes the accumulator tile into C. `apply_beta` is true only on the
// first KC block of a column stripe, so beta is applied exactly once and
// beta == 0 never reads C (the BLAS NaN-overwrite convention).
inline void store_tile(const double* __restrict acc, double* __restrict c,
                       size_t ldc, size_t mr, size_t nr, double alpha,
                       double beta, bool apply_beta) {
  for (size_t j = 0; j < nr; ++j) {
    double* __restrict cj = c + j * ldc;
    const double* __restrict aj = acc + j * kMr;
    if (!apply_beta || beta == 1.0) {
      for (size_t i = 0; i < mr; ++i) cj[i] += alpha * aj[i];
    } else if (beta == 0.0) {
      for (size_t i = 0; i < mr; ++i) cj[i] = alpha * aj[i];
    } else {
      for (size_t i = 0; i < mr; ++i) cj[i] = alpha * aj[i] + beta * cj[i];
    }
  }
}

}  // namespace

void dgemm(char transa, char transb, size_t m, size_t n, size_t k,
           double alpha, const double* a, size_t lda, const double* b,
           size_t ldb, double beta, double* c, size_t ldc) {
  MP_REQUIRE(transa == 'N' || transa == 'T' || transa == 'n' || transa == 't',
             "dgemm: bad transa");
  MP_REQUIRE(transb == 'N' || transb == 'T' || transb == 'n' || transb == 't',
             "dgemm: bad transb");
  const bool ta = (transa == 'T' || transa == 't');
  const bool tb = (transb == 'T' || transb == 't');
  MP_DCHECK(ldc >= std::max<size_t>(1, m), "dgemm: ldc too small");

  // Degenerate cases reduce to scaling C by beta.
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) {
    if (beta == 1.0) return;
    for (size_t j = 0; j < n; ++j) {
      double* cj = c + j * ldc;
      if (beta == 0.0) {
        std::fill(cj, cj + m, 0.0);
      } else {
        for (size_t i = 0; i < m; ++i) cj[i] *= beta;
      }
    }
    return;
  }

  // Thread-local packing workspaces: zero heap traffic at steady state.
  support::WorkspacePool& ws = support::WorkspacePool::tls();
  double* packa = ws.get(support::WorkspacePool::kGemmPackA, kMc * kKc);
  double* packb = ws.get(support::WorkspacePool::kGemmPackB, kKc * kNc);

  for (size_t jc = 0; jc < n; jc += kNc) {
    const size_t nb = std::min(kNc, n - jc);
    for (size_t pc = 0; pc < k; pc += kKc) {
      const size_t kb = std::min(kKc, k - pc);
      const bool apply_beta = (pc == 0);
      pack_b(tb, b, ldb, pc, jc, kb, nb, packb);
      for (size_t ic = 0; ic < m; ic += kMc) {
        const size_t mb = std::min(kMc, m - ic);
        pack_a(ta, a, lda, ic, pc, mb, kb, packa);
        for (size_t jr = 0; jr < nb; jr += kNr) {
          const size_t nr = std::min(kNr, nb - jr);
          const double* bp = packb + jr * kb;
          for (size_t ir = 0; ir < mb; ir += kMr) {
            const size_t mr = std::min(kMr, mb - ir);
            alignas(64) double acc[kMr * kNr];
            microkernel(kb, packa + ir * kb, bp, acc);
            store_tile(acc, c + (jc + jr) * ldc + ic + ir, ldc, mr, nr,
                       alpha, beta, apply_beta);
          }
        }
      }
    }
  }
}

void dfill(size_t n, double v, double* x) { std::fill(x, x + n, v); }

void daxpy(size_t n, double alpha, const double* x, double* y) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double ddot(size_t n, const double* x, const double* y) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

}  // namespace mp::linalg
