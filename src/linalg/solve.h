// Small dense linear algebra used by DIIS and the FCI checker: an in-place
// Gaussian-elimination solver with partial pivoting, and a symmetric
// eigensolver (Jacobi) adequate for the small matrices these produce.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace mp::linalg {

/// Solve A x = b for dense square A (copy taken). Throws DataError if the
/// matrix is numerically singular.
std::vector<double> solve_linear(Matrix a, std::vector<double> b);

/// Eigen-decomposition of a symmetric matrix by cyclic Jacobi rotations.
/// Returns eigenvalues ascending; if eigvecs is non-null it receives the
/// corresponding orthonormal eigenvectors as columns.
std::vector<double> symmetric_eigenvalues(Matrix a, Matrix* eigvecs = nullptr);

}  // namespace mp::linalg
