#include "linalg/solve.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace mp::linalg {

std::vector<double> solve_linear(Matrix a, std::vector<double> b) {
  const size_t n = a.rows();
  MP_REQUIRE(a.cols() == n, "solve_linear: matrix must be square");
  MP_REQUIRE(b.size() == n, "solve_linear: rhs size mismatch");

  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t piv = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(piv, col))) piv = r;
    }
    if (std::fabs(a(piv, col)) < 1e-14) {
      throw DataError("solve_linear: singular matrix");
    }
    if (piv != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a(col, c), a(piv, c));
      std::swap(b[col], b[piv]);
    }
    const double inv = 1.0 / a(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) * inv;
      if (f == 0.0) continue;
      for (size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (size_t c = ri + 1; c < n; ++c) s -= a(ri, c) * x[c];
    x[ri] = s / a(ri, ri);
  }
  return x;
}

std::vector<double> symmetric_eigenvalues(Matrix a, Matrix* eigvecs) {
  const size_t n = a.rows();
  MP_REQUIRE(a.cols() == n, "symmetric_eigenvalues: matrix must be square");
  Matrix v(n, n);
  for (size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (off < 1e-24) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        if (std::fabs(a(p, q)) < 1e-18) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (size_t k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return a(x, x) < a(y, y); });
  std::vector<double> evals(n);
  for (size_t i = 0; i < n; ++i) evals[i] = a(order[i], order[i]);
  if (eigvecs) {
    *eigvecs = Matrix(n, n);
    for (size_t j = 0; j < n; ++j) {
      for (size_t i = 0; i < n; ++i) (*eigvecs)(i, j) = v(i, order[j]);
    }
  }
  return evals;
}

}  // namespace mp::linalg
