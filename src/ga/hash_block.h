// The TCE hash-block layout: NWChem stores each block-sparse tensor in a
// flat Global Array and locates blocks through a hash table keyed by the
// tile indices. GET_HASH_BLOCK / ADD_HASH_BLOCK are the two primitives the
// generated FORTRAN calls around every GEMM chain; we reproduce both.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ga/global_array.h"

namespace mp::ga {

struct BlockEntry {
  int64_t offset = 0;  ///< element offset of the block in the flat array
  int64_t size = 0;    ///< elements in the block
};

/// Immutable-after-build index from block key to (offset, size).
class HashBlockIndex {
 public:
  /// Encode up to four tile indices (each < 2^16) into one key.
  static uint64_t key4(int a, int b, int c, int d) {
    return (static_cast<uint64_t>(static_cast<uint16_t>(a)) << 48) |
           (static_cast<uint64_t>(static_cast<uint16_t>(b)) << 32) |
           (static_cast<uint64_t>(static_cast<uint16_t>(c)) << 16) |
           static_cast<uint64_t>(static_cast<uint16_t>(d));
  }

  /// Register a block; offsets are assigned densely in registration order.
  /// Returns the assigned entry. A key may be registered only once.
  BlockEntry add(uint64_t key, int64_t size);

  std::optional<BlockEntry> find(uint64_t key) const;

  /// Total elements across all registered blocks — the GA size to allocate.
  int64_t total_size() const { return next_offset_; }

  size_t num_blocks() const { return map_.size(); }

  /// All registered keys in registration (= offset) order.
  const std::vector<uint64_t>& keys() const { return keys_; }

 private:
  std::unordered_map<uint64_t, BlockEntry> map_;
  std::vector<uint64_t> keys_;
  int64_t next_offset_ = 0;
};

/// GET_HASH_BLOCK: fetch a block into a local buffer. Throws DataError if
/// the key is unknown. buf must have room for the block's size.
void get_hash_block(const GlobalArray& ga, const HashBlockIndex& index,
                    uint64_t key, double* buf);

/// ADD_HASH_BLOCK: atomically accumulate a local buffer into the block.
void add_hash_block(GlobalArray& ga, const HashBlockIndex& index,
                    uint64_t key, const double* buf, double alpha = 1.0);

/// PUT flavour used to initialize input tensors before a run.
void put_hash_block(GlobalArray& ga, const HashBlockIndex& index,
                    uint64_t key, const double* buf);

}  // namespace mp::ga
