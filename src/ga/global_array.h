// A Global Arrays (GA) style distributed array over the virtual cluster.
//
// Mirrors the subset of the GA toolkit that NWChem's TCE-generated code
// uses: one-sided get/put/accumulate, distribution/access queries
// (ga_distribution / ga_access), a collective sync, and the NXTVAL shared
// counter that TCE's dynamic load balancing is built on.
//
// Storage is one process-wide buffer partitioned into contiguous per-rank
// chunks; one-sided operations touch the owner's chunk directly, with
// striped locks making accumulates atomic — the same semantics GA provides
// over a real network, minus the transfer cost (which src/sim models).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "vc/cluster.h"

namespace mp::ga {

class GlobalArray {
 public:
  /// Create an array of `nelems` doubles distributed over the cluster's
  /// ranks in contiguous blocks (GA's default "block" distribution).
  /// Collective in spirit; in-process it is safe to construct from one
  /// thread before the SPMD region starts.
  GlobalArray(vc::Cluster* cluster, int64_t nelems);

  int64_t size() const { return nelems_; }
  int nranks() const { return cluster_->nranks(); }

  /// ga_get: copy [lo, lo+count) into out.
  void get(int64_t lo, int64_t count, double* out) const;

  /// ga_put: overwrite [lo, lo+count) with in.
  void put(int64_t lo, int64_t count, const double* in);

  /// ga_acc: data[lo+i] += alpha * in[i], atomically with respect to any
  /// other concurrent acc (NWChem's ADD_HASH_BLOCK maps to this).
  void acc(int64_t lo, int64_t count, const double* in, double alpha = 1.0);

  /// ga_distribution: the [lo, hi) range owned by `rank` (hi exclusive).
  std::pair<int64_t, int64_t> distribution(int rank) const;

  /// Owner rank of element `idx`.
  int owner_of(int64_t idx) const;

  /// ga_access: direct view of the chunk owned by `rank`. The caller is
  /// responsible for synchronization when mixing access() with one-sided
  /// updates (same contract as GA itself).
  std::span<double> access(int rank);
  std::span<const double> access(int rank) const;

  /// ga_zero.
  void zero();

  /// Collective sync (barrier + make all previous one-sided ops visible).
  void sync(vc::RankCtx& ctx) const;

  /// Operation counters, used by tests and the benchmark harnesses.
  uint64_t ops_get() const { return ops_get_.load(); }
  uint64_t ops_put() const { return ops_put_.load(); }
  uint64_t ops_acc() const { return ops_acc_.load(); }
  uint64_t bytes_moved() const { return bytes_moved_.load(); }

 private:
  void check_range(int64_t lo, int64_t count) const;

  static constexpr int64_t kStripe = 2048;  // elements per lock stripe

  vc::Cluster* cluster_;
  int64_t nelems_;
  int64_t chunk_;  // elements per rank (last rank may own less)
  std::vector<double> data_;
  std::unique_ptr<std::mutex[]> stripe_locks_;
  size_t num_stripes_;

  mutable std::atomic<uint64_t> ops_get_{0};
  std::atomic<uint64_t> ops_put_{0};
  std::atomic<uint64_t> ops_acc_{0};
  mutable std::atomic<uint64_t> bytes_moved_{0};
};

/// The NXTVAL shared counter: every call returns a unique, monotonically
/// increasing ticket. In NWChem this is the global work-stealing primitive
/// whose contention the paper identifies as unscalable.
class NxtVal {
 public:
  explicit NxtVal(vc::Cluster* cluster, int counter_slot = 0)
      : cluster_(cluster), slot_(counter_slot) {
    cluster_->reset_counter(slot_, 0);
  }

  /// Next ticket (starts at 0).
  long next() { return cluster_->fetch_add_counter(slot_, 1); }

  /// Collective reset between work levels.
  void reset() { cluster_->reset_counter(slot_, 0); }

 private:
  vc::Cluster* cluster_;
  int slot_;
};

}  // namespace mp::ga
