#include "ga/global_array.h"

#include <algorithm>
#include <cstring>

#include "support/error.h"

namespace mp::ga {

GlobalArray::GlobalArray(vc::Cluster* cluster, int64_t nelems)
    : cluster_(cluster), nelems_(nelems) {
  MP_REQUIRE(cluster != nullptr, "GlobalArray: null cluster");
  MP_REQUIRE(nelems >= 0, "GlobalArray: negative size");
  const int64_t r = cluster->nranks();
  chunk_ = (nelems + r - 1) / r;
  if (chunk_ == 0) chunk_ = 1;
  data_.assign(static_cast<size_t>(nelems), 0.0);
  num_stripes_ = static_cast<size_t>((nelems + kStripe - 1) / kStripe);
  if (num_stripes_ == 0) num_stripes_ = 1;
  stripe_locks_ = std::make_unique<std::mutex[]>(num_stripes_);
}

void GlobalArray::check_range(int64_t lo, int64_t count) const {
  MP_REQUIRE(lo >= 0 && count >= 0 && lo + count <= nelems_,
             "GlobalArray: range out of bounds");
}

void GlobalArray::get(int64_t lo, int64_t count, double* out) const {
  check_range(lo, count);
  std::memcpy(out, data_.data() + lo,
              static_cast<size_t>(count) * sizeof(double));
  ops_get_.fetch_add(1, std::memory_order_relaxed);
  bytes_moved_.fetch_add(static_cast<uint64_t>(count) * sizeof(double),
                         std::memory_order_relaxed);
}

void GlobalArray::put(int64_t lo, int64_t count, const double* in) {
  check_range(lo, count);
  std::memcpy(data_.data() + lo, in,
              static_cast<size_t>(count) * sizeof(double));
  ops_put_.fetch_add(1, std::memory_order_relaxed);
  bytes_moved_.fetch_add(static_cast<uint64_t>(count) * sizeof(double),
                         std::memory_order_relaxed);
}

void GlobalArray::acc(int64_t lo, int64_t count, const double* in,
                      double alpha) {
  check_range(lo, count);
  // Walk the range stripe by stripe, holding exactly one stripe lock at a
  // time (ascending order => no deadlock, per-element atomicity preserved).
  int64_t pos = lo;
  const int64_t hi = lo + count;
  while (pos < hi) {
    const int64_t stripe = pos / kStripe;
    const int64_t stripe_end = std::min((stripe + 1) * kStripe, hi);
    {
      std::lock_guard lock(stripe_locks_[static_cast<size_t>(stripe)]);
      double* dst = data_.data() + pos;
      const double* src = in + (pos - lo);
      const int64_t n = stripe_end - pos;
      for (int64_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
    }
    pos = stripe_end;
  }
  ops_acc_.fetch_add(1, std::memory_order_relaxed);
  bytes_moved_.fetch_add(static_cast<uint64_t>(count) * sizeof(double),
                         std::memory_order_relaxed);
}

std::pair<int64_t, int64_t> GlobalArray::distribution(int rank) const {
  MP_REQUIRE(rank >= 0 && rank < nranks(), "GlobalArray: bad rank");
  const int64_t lo = std::min<int64_t>(rank * chunk_, nelems_);
  const int64_t hi = std::min<int64_t>(lo + chunk_, nelems_);
  return {lo, hi};
}

int GlobalArray::owner_of(int64_t idx) const {
  MP_REQUIRE(idx >= 0 && idx < nelems_, "GlobalArray: bad index");
  return static_cast<int>(std::min<int64_t>(idx / chunk_, nranks() - 1));
}

std::span<double> GlobalArray::access(int rank) {
  const auto [lo, hi] = distribution(rank);
  return {data_.data() + lo, static_cast<size_t>(hi - lo)};
}

std::span<const double> GlobalArray::access(int rank) const {
  const auto [lo, hi] = distribution(rank);
  return {data_.data() + lo, static_cast<size_t>(hi - lo)};
}

void GlobalArray::zero() { std::fill(data_.begin(), data_.end(), 0.0); }

void GlobalArray::sync(vc::RankCtx& ctx) const { ctx.barrier(); }

}  // namespace mp::ga
