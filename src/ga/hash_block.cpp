#include "ga/hash_block.h"

#include "support/error.h"

namespace mp::ga {

BlockEntry HashBlockIndex::add(uint64_t key, int64_t size) {
  MP_REQUIRE(size >= 0, "HashBlockIndex: negative block size");
  MP_REQUIRE(map_.find(key) == map_.end(),
             "HashBlockIndex: duplicate block key");
  const BlockEntry e{next_offset_, size};
  map_.emplace(key, e);
  keys_.push_back(key);
  next_offset_ += size;
  return e;
}

std::optional<BlockEntry> HashBlockIndex::find(uint64_t key) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

namespace {

BlockEntry lookup_or_throw(const HashBlockIndex& index, uint64_t key) {
  const auto e = index.find(key);
  if (!e) throw mp::DataError("hash block lookup failed: unknown key");
  return *e;
}

}  // namespace

void get_hash_block(const GlobalArray& ga, const HashBlockIndex& index,
                    uint64_t key, double* buf) {
  const BlockEntry e = lookup_or_throw(index, key);
  ga.get(e.offset, e.size, buf);
}

void add_hash_block(GlobalArray& ga, const HashBlockIndex& index,
                    uint64_t key, const double* buf, double alpha) {
  const BlockEntry e = lookup_or_throw(index, key);
  ga.acc(e.offset, e.size, buf, alpha);
}

void put_hash_block(GlobalArray& ga, const HashBlockIndex& index,
                    uint64_t key, const double* buf) {
  const BlockEntry e = lookup_or_throw(index, key);
  ga.put(e.offset, e.size, buf);
}

}  // namespace mp::ga
