// Ownership-transfer ledger for inter-node work stealing. The ga layer is
// where placement lives (GlobalArray::owner_of, the tce rank_of formulas
// derived from block ownership), so it also records which rank currently
// *holds* a task that stealing moved away from its home: while a migration
// is in flight, holder_of() answers coherently where rank_of alone would
// point at the (now idle) home rank. Entries are created on the victim when
// a task is handed to the fabric and retired when the thief's completion
// credit arrives, mirroring the runtime's credit-based termination scheme.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "ptg/context.h"
#include "ptg/types.h"

namespace mp::ga {

/// Thread-safe registry of in-flight task migrations, one per process
/// (shared by every rank of the virtual cluster, keyed by home rank).
/// Implements ptg::MigrationObserver so a ptg::Context can feed it through
/// Options::migration_observer without the ptg layer depending on ga.
class MigrationLedger final : public ptg::MigrationObserver {
 public:
  /// Victim side: `key` (homed on `home`) was shipped to `holder`.
  void migrated(const ptg::TaskKey& key, int home, int holder) override;

  /// Victim side: the thief's credit arrived — the migrated task finished.
  void credited(const ptg::TaskKey& key, int home, int holder) override;

  /// Victim side, rank-failure recovery: the holder of an in-flight
  /// migration was confirmed dead and the task was re-homed to
  /// `new_holder` (the home rank itself when it re-injects). The holder
  /// entry is dropped — no credit will ever arrive for the dead thief —
  /// so holder_of() answers `home` again while the replacement runs.
  void reassigned(const ptg::TaskKey& key, int home, int new_holder) override;

  /// Current holder of a task: the thief's rank while the migration is in
  /// flight, else `home` (rank_of stays authoritative for anything never
  /// stolen or already credited).
  int holder_of(const ptg::TaskKey& key, int home) const;

  /// Migrations recorded but not yet credited.
  size_t in_flight() const;

  uint64_t recorded() const {
    return recorded_.load(std::memory_order_acquire);
  }
  uint64_t completed() const {
    return completed_.load(std::memory_order_acquire);
  }
  uint64_t reassigned_count() const {
    return reassigned_.load(std::memory_order_acquire);
  }

  /// Internal-consistency self check; "" when consistent. Mirrors the
  /// counter-pair discipline of the runtime stats: a credit always retires
  /// a recorded migration, so completed <= recorded and the live map holds
  /// exactly the difference once quiescent.
  std::string validate() const;

  /// One-line summary for watchdog dumps: cumulative recorded/credited
  /// counts plus the in-flight backlog. "" only while no migration has
  /// ever been recorded, so a dump can tell "stealing idle" apart from
  /// "stealing ran and drained".
  std::string describe() const override;

 private:
  struct Key {
    ptg::TaskKey key;
    int home;
    bool operator==(const Key& o) const {
      return home == o.home && key == o.key;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return ptg::TaskKeyHash{}(k.key) * 31u +
             static_cast<size_t>(k.home + 1);
    }
  };

  mutable std::mutex mu_;
  std::unordered_map<Key, int, KeyHash> live_;  ///< -> holder rank
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> reassigned_{0};
};

}  // namespace mp::ga
