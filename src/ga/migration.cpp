#include "ga/migration.h"

#include <sstream>

namespace mp::ga {

void MigrationLedger::migrated(const ptg::TaskKey& key, int home,
                               int holder) {
  {
    std::lock_guard lock(mu_);
    live_[Key{key, home}] = holder;
  }
  recorded_.fetch_add(1, std::memory_order_release);
}

void MigrationLedger::credited(const ptg::TaskKey& key, int home,
                               int holder) {
  bool retired = false;
  {
    std::lock_guard lock(mu_);
    auto it = live_.find(Key{key, home});
    // Tolerate a credit whose holder no longer matches (the entry is the
    // latest migration of the key); a credit with no entry at all is
    // counted anyway so validate() can flag the imbalance.
    (void)holder;
    if (it != live_.end()) {
      live_.erase(it);
      retired = true;
    }
  }
  (void)retired;
  completed_.fetch_add(1, std::memory_order_release);
}

void MigrationLedger::reassigned(const ptg::TaskKey& key, int home,
                                 int new_holder) {
  {
    std::lock_guard lock(mu_);
    auto it = live_.find(Key{key, home});
    // The dead thief's entry is retired without a credit. When the task is
    // re-homed to the home rank itself (the only case today) no new entry
    // is needed; a future re-steal records a fresh migration normally.
    if (it != live_.end()) {
      if (new_holder == home) {
        live_.erase(it);
      } else {
        it->second = new_holder;
      }
    }
  }
  reassigned_.fetch_add(1, std::memory_order_release);
}

int MigrationLedger::holder_of(const ptg::TaskKey& key, int home) const {
  std::lock_guard lock(mu_);
  const auto it = live_.find(Key{key, home});
  return it != live_.end() ? it->second : home;
}

size_t MigrationLedger::in_flight() const {
  std::lock_guard lock(mu_);
  return live_.size();
}

std::string MigrationLedger::validate() const {
  // Read completed first (acquire): its increments are release-ordered
  // after the matching recorded increment, so completed <= recorded holds
  // in any snapshot.
  const uint64_t done = completed_.load(std::memory_order_acquire);
  const uint64_t reh = reassigned_.load(std::memory_order_acquire);
  const uint64_t rec = recorded_.load(std::memory_order_acquire);
  if (done > rec) {
    return "MigrationLedger: completed (" + std::to_string(done) +
           ") > recorded (" + std::to_string(rec) + ")";
  }
  // Every reassignment retires (or redirects) a recorded migration, and a
  // migration is retired at most once — by its credit or its reassignment.
  if (done + reh > rec) {
    return "MigrationLedger: completed (" + std::to_string(done) +
           ") + reassigned (" + std::to_string(reh) + ") > recorded (" +
           std::to_string(rec) + ")";
  }
  std::lock_guard lock(mu_);
  if (live_.size() > rec) {
    return "MigrationLedger: live entries (" + std::to_string(live_.size()) +
           ") > recorded (" + std::to_string(rec) + ")";
  }
  return {};
}

std::string MigrationLedger::describe() const {
  const size_t inflight = in_flight();
  if (inflight == 0 && recorded() == 0) return {};
  std::ostringstream os;
  os << "migrations recorded=" << recorded() << " credited=" << completed()
     << " in_flight=" << inflight;
  if (reassigned_count() > 0) os << " reassigned=" << reassigned_count();
  return os.str();
}

}  // namespace mp::ga
