#!/usr/bin/env python3
"""Project lint: enforces repo invariants the compiler cannot.

Part of the static-analysis gate (ctest -L analysis, test name lint_py).
Checks, each with a stable rule id:

  raw-databuf-new        DataBuf vectors must come from make_buf /
                         make_buf_pooled (src/ptg/types.h), never a raw
                         `new std::vector<double>` — otherwise the pool
                         recycling and the MP_ANALYSIS lifecycle tracking
                         are silently bypassed.
  lock-in-task-body      No lock acquisition inside a `.body = [...]` task
                         lambda: task bodies must be lock-free so the
                         scheduler can never deadlock through user code.
                         Waiver: a `// mp-lint: allow(lock-in-task-body)`
                         comment inside the body (the paper's WRITE
                         critical region carries one).
  pragma-once            Every header under src/ starts its preprocessor
                         life with #pragma once.
  iostream-in-header     No <iostream> in src/ headers (drags in static
                         init order and bloats every TU; use <cstdio> or
                         support/log.h in .cpp files).
  include-count          At most MAX_INCLUDES includes per src/ file —
                         a growing include list marks a layering problem.
  using-namespace-std    `using namespace std;` is banned everywhere.
  reset-stats-discipline The persistent-Context reset body
                         (Context::reset_local_state in
                         src/ptg/context.cpp, the worker half of
                         reset_for_resubmission) must snapshot +
                         validate() every stats family BEFORE the first
                         counter is zeroed: each release-ordered counter
                         write must be paired with an acquire-ordered
                         snapshot read, or a torn pair silently survives
                         into the next submission. The families are NOT
                         hardcoded: every `*Stats`-returning zero-arg
                         accessor declared in src/ptg/context.h is
                         discovered by pattern, so adding a new stats
                         family to the Context automatically extends the
                         reset obligation.
  wire-tag-exhaustiveness Every `switch` over a fabric message tag (the
                         WireTag enum in src/ptg/protocol.h, or its
                         Context::kTag* aliases) must either list a case
                         for every enumerator or carry a `default:` that
                         raises / logs (MP_REQUIRE, MP_ASSERT, throw,
                         abort, MP_LOG_WARN/ERROR). A silently dropped
                         tag is the PR 6 livelock class: the message is
                         consumed, no handler runs, and the protocol
                         stalls with no diagnostic.

Exit status: 0 clean, 1 findings, 2 internal error.
Usage: tools/lint.py [--tidy] [paths...]   (default: src/)
"""

import pathlib
import re
import shutil
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
MAX_INCLUDES = 30

RAW_NEW_RE = re.compile(r"\bnew\s+std::vector<\s*double\s*>")
LOCK_RE = re.compile(
    r"\b(?:std::)?(?:lock_guard|unique_lock|scoped_lock)\b|\.lock\(\)")
BODY_RE = re.compile(r"\bbody\s*=\s*\[")
WAIVER = "mp-lint: allow(lock-in-task-body)"


def strip_comments_and_strings(text):
    """Blanks out comments and string literals, preserving offsets."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(" ".join("\n" if ch == "\n" else " " for ch in [])
                       or "".join("\n" if ch == "\n" else " "
                                  for ch in text[i:j]))
            i = j
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def lambda_span(code, start):
    """[start, end) of the lambda body whose `[` capture begins at start."""
    brace = code.find("{", start)
    if brace < 0:
        return start, start
    depth, i = 0, brace
    while i < len(code):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return brace, i + 1
        i += 1
    return brace, len(code)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def lint_file(path, findings):
    try:
        rel = path.relative_to(REPO)
    except ValueError:  # explicit path outside the repo: lint it fully
        rel = path
    text = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments_and_strings(text)
    in_src = "src" in rel.parts
    is_header = path.suffix == ".h"

    for m in re.finditer(r"using\s+namespace\s+std\s*;", code):
        findings.append((rel, line_of(text, m.start()), "using-namespace-std",
                         "`using namespace std;` is banned"))

    if str(rel) != "src/ptg/types.h":
        for m in RAW_NEW_RE.finditer(code):
            findings.append(
                (rel, line_of(text, m.start()), "raw-databuf-new",
                 "raw `new std::vector<double>`; use make_buf/"
                 "make_buf_pooled (src/ptg/types.h)"))

    if str(rel) == "src/ptg/context.cpp":
        lint_reset_stats(path, rel, text, code, findings)
        if lint_tag_switches(rel, text, code, findings) == 0:
            findings.append(
                (rel, 1, "wire-tag-exhaustiveness",
                 "no switch over a message tag found in the comm loop; "
                 "the dispatch-exhaustiveness rule cannot anchor (update "
                 "tools/lint.py if the dispatch moved)"))
    elif in_src:
        lint_tag_switches(rel, text, code, findings)

    if in_src:
        for m in BODY_RE.finditer(code):
            lo, hi = lambda_span(code, m.end() - 1)
            body_code = code[lo:hi]
            lock = LOCK_RE.search(body_code)
            if lock and WAIVER not in text[lo:hi]:
                findings.append(
                    (rel, line_of(text, lo + lock.start()),
                     "lock-in-task-body",
                     "lock acquisition inside a task body; task bodies "
                     "must be lock-free (waiver: // " + WAIVER + ")"))

        n_includes = len(re.findall(r"^\s*#\s*include\b", code, re.M))
        if n_includes > MAX_INCLUDES:
            findings.append(
                (rel, 1, "include-count",
                 f"{n_includes} includes (max {MAX_INCLUDES}); "
                 "split the file or trim the interface"))

        if is_header:
            first_directive = re.search(r"^\s*#\s*(\w+)", code, re.M)
            if not first_directive or first_directive.group(1) != "pragma" \
                    or "#pragma once" not in code:
                findings.append((rel, 1, "pragma-once",
                                 "header must start with #pragma once"))
            if re.search(r"#\s*include\s*<iostream>", code):
                findings.append(
                    (rel, line_of(text,
                                  code.find("<iostream>")),
                     "iostream-in-header",
                     "<iostream> in a src/ header; use <cstdio> or "
                     "support/log.h in the .cpp"))


RESET_FN_RE = re.compile(r"void\s+Context::reset_local_state\s*\([^)]*\)\s*\{")
# Zero-arg accessor returning a stats aggregate, e.g.
#   StealStats steal_stats() const;
#   SchedStats scheduler_stats() const { return sched_->stats(); }
STATS_ACCESSOR_RE = re.compile(r"\b([A-Z]\w*Stats)\s+(\w+)\s*\(\s*\)\s*const")


def reset_stats_families(header_path):
    """Discover the stats families the reset body must certify: every
    `*Stats`-returning zero-arg const accessor declared in context.h.
    Returns [(type, method), ...] deduplicated by type, declaration order.
    Pattern-based on purpose (ISSUE 10): adding e.g. `ResendStats
    resend_stats() const` to the Context extends the reset obligation
    without touching this file."""
    try:
        header = header_path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return []
    seen, families = set(), []
    for typ, method in STATS_ACCESSOR_RE.findall(
            strip_comments_and_strings(header)):
        if typ not in seen:
            seen.add(typ)
            families.append((typ, method))
    return families


def lint_reset_stats(path, rel, text, code, findings):
    """reset-stats-discipline: the persistent-Context reset body must read
    (acquire) and validate() every stats counter family before it zeroes
    (release) the first counter — see src/ptg/context.h's counter-pair
    discipline. Anchored on Context::reset_local_state; if that function
    disappears the rule reports, so a rename cannot silently retire it.
    The family list is discovered from context.h (reset_stats_families),
    and each family is matched by its snapshot TYPE, not the accessor
    spelling, so `sched_->stats()` and `scheduler_stats()` both satisfy
    the SchedStats obligation."""
    m = RESET_FN_RE.search(code)
    if not m:
        findings.append(
            (rel, 1, "reset-stats-discipline",
             "Context::reset_local_state not found; the reset-path stats "
             "discipline cannot be checked (update tools/lint.py if the "
             "reset body moved)"))
        return
    families = reset_stats_families(path.parent / "context.h")
    if not families:
        findings.append(
            (rel, 1, "reset-stats-discipline",
             "no *Stats-returning accessors discovered in src/ptg/"
             "context.h; the reset-path stats discipline cannot be "
             "checked (update tools/lint.py if the accessors moved)"))
        return
    lo, hi = lambda_span(code, m.end() - 1)
    body = code[lo:hi]
    first_zero = body.find(".store(0")
    if first_zero < 0:
        findings.append(
            (rel, line_of(text, lo), "reset-stats-discipline",
             "reset body zeroes no counters; the between-runs reset must "
             "re-arm the atomic counters (or this rule needs updating)"))
        return
    for typ, method in families:
        pos = body.find(typ)
        if pos < 0 or pos > first_zero:
            where = "missing" if pos < 0 else "after the first `.store(0`"
            findings.append(
                (rel, line_of(text, lo + (pos if pos >= 0 else 0)),
                 "reset-stats-discipline",
                 f"`{typ}` snapshot (accessor `{method}()`) {where}: every "
                 "counter family must be snapshotted (acquire) and "
                 "validated before any counter is zeroed (release)"))
    n_validate = body.count(".validate()", 0, first_zero)
    if n_validate < len(families):
        names = ", ".join(t for t, _ in families)
        findings.append(
            (rel, line_of(text, lo), "reset-stats-discipline",
             f"only {n_validate} .validate() call(s) before the first "
             f"`.store(0` (need {len(families)}: {names})"))


WIRE_ENUM_FILE = "src/ptg/protocol.h"
WIRE_ENUM_RE = re.compile(r"\bkWire(\w+)\s*=\s*\d+")
# A switch whose controlling expression is a message tag: `switch (tag)`,
# `switch (m.tag)`, `switch (msg->tag)`, ... — the expression must END in
# the identifier `tag` so switches over unrelated enums never match.
TAG_SWITCH_RE = re.compile(r"\bswitch\s*\(\s*([^()]*?\btag)\s*\)")
CASE_TAG_RE = re.compile(r"\bcase\s+(?:\w+\s*::\s*)*k(?:Wire|Tag)(\w+)\s*:")
DEFAULT_RAISES_RE = re.compile(
    r"\b(?:MP_REQUIRE|MP_ASSERT|MP_LOG_WARN|MP_LOG_ERROR|throw|abort)\b")

_WIRE_TAGS = None


def wire_tags():
    """Enumerator names of the WireTag enum (kWire prefix stripped),
    parsed from src/ptg/protocol.h. Cached; empty set on parse failure —
    lint_tag_switches turns that into a finding rather than silence."""
    global _WIRE_TAGS
    if _WIRE_TAGS is None:
        try:
            text = (REPO / WIRE_ENUM_FILE).read_text(encoding="utf-8",
                                                     errors="replace")
            _WIRE_TAGS = frozenset(
                WIRE_ENUM_RE.findall(strip_comments_and_strings(text)))
        except OSError:
            _WIRE_TAGS = frozenset()
    return _WIRE_TAGS


def lint_tag_switches(rel, text, code, findings):
    """wire-tag-exhaustiveness: every switch over a fabric message tag
    must handle all WireTag enumerators or carry a default that raises.
    Returns the number of tag switches inspected (context.cpp anchors on
    it being nonzero, so moving the dispatch cannot retire the rule)."""
    inspected = 0
    for m in TAG_SWITCH_RE.finditer(code):
        inspected += 1
        lo, hi = lambda_span(code, m.end())
        body = code[lo:hi]
        if not wire_tags():
            findings.append(
                (rel, line_of(text, m.start()), "wire-tag-exhaustiveness",
                 f"switch over `{m.group(1).strip()}` but no WireTag "
                 f"enumerators could be parsed from {WIRE_ENUM_FILE}; "
                 "update tools/lint.py"))
            continue
        handled = set(CASE_TAG_RE.findall(body))
        missing = sorted(wire_tags() - handled)
        if not missing:
            continue  # fully enumerated; a default is then optional
        dm = re.search(r"\bdefault\s*:", body)
        if dm:
            # The default's statement region: up to the next case label
            # (defaults normally come last, so usually the body tail).
            nxt = re.search(r"\bcase\b", body[dm.end():])
            region = body[dm.end():dm.end() + nxt.start() if nxt
                          else len(body)]
            if DEFAULT_RAISES_RE.search(region):
                continue
            findings.append(
                (rel, line_of(text, lo + dm.start()),
                 "wire-tag-exhaustiveness",
                 "tag switch default does not raise or log (need "
                 "MP_REQUIRE/MP_ASSERT/throw/abort/MP_LOG_*) and cases "
                 "miss: " + ", ".join("kWire" + t for t in missing)))
        else:
            findings.append(
                (rel, line_of(text, m.start()), "wire-tag-exhaustiveness",
                 "tag switch without default misses enumerators: "
                 + ", ".join("kWire" + t for t in missing)
                 + " (add the cases or a raising default)"))
    return inspected


def run_tidy():
    tidy = shutil.which("clang-tidy")
    if not tidy:
        print("lint.py --tidy: clang-tidy not found on this host; skipped")
        return 0
    sources = sorted(str(p) for p in (REPO / "src").rglob("*.cpp"))
    r = subprocess.run([tidy, "-p", str(REPO / "build"), *sources],
                       cwd=REPO)
    return r.returncode


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    roots = ([pathlib.Path(a) if pathlib.Path(a).is_absolute() else REPO / a
              for a in args] if args else [REPO / "src"])
    files = []
    for root in roots:
        if root.is_file():
            files.append(root)
        else:
            files.extend(sorted(root.rglob("*.h")))
            files.extend(sorted(root.rglob("*.cpp")))
    findings = []
    for f in files:
        lint_file(f, findings)
    for rel, line, rule, msg in findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
    if "--tidy" in argv and run_tidy() != 0:
        return 1
    if findings:
        print(f"lint.py: {len(findings)} finding(s) in {len(files)} files")
        return 1
    print(f"lint.py: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
