#!/usr/bin/env python3
"""Project lint: enforces repo invariants the compiler cannot.

Part of the static-analysis gate (ctest -L analysis, test name lint_py).
Checks, each with a stable rule id:

  raw-databuf-new        DataBuf vectors must come from make_buf /
                         make_buf_pooled (src/ptg/types.h), never a raw
                         `new std::vector<double>` — otherwise the pool
                         recycling and the MP_ANALYSIS lifecycle tracking
                         are silently bypassed.
  lock-in-task-body      No lock acquisition inside a `.body = [...]` task
                         lambda: task bodies must be lock-free so the
                         scheduler can never deadlock through user code.
                         Waiver: a `// mp-lint: allow(lock-in-task-body)`
                         comment inside the body (the paper's WRITE
                         critical region carries one).
  pragma-once            Every header under src/ starts its preprocessor
                         life with #pragma once.
  iostream-in-header     No <iostream> in src/ headers (drags in static
                         init order and bloats every TU; use <cstdio> or
                         support/log.h in .cpp files).
  include-count          At most MAX_INCLUDES includes per src/ file —
                         a growing include list marks a layering problem.
  using-namespace-std    `using namespace std;` is banned everywhere.
  reset-stats-discipline The persistent-Context reset body
                         (Context::reset_local_state in
                         src/ptg/context.cpp) must snapshot + validate()
                         every stats family (steal, failure, scheduler)
                         BEFORE the first counter is zeroed: each
                         release-ordered counter write must be paired
                         with an acquire-ordered snapshot read, or a torn
                         pair silently survives into the next submission.

Exit status: 0 clean, 1 findings, 2 internal error.
Usage: tools/lint.py [--tidy] [paths...]   (default: src/)
"""

import pathlib
import re
import shutil
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
MAX_INCLUDES = 30

RAW_NEW_RE = re.compile(r"\bnew\s+std::vector<\s*double\s*>")
LOCK_RE = re.compile(
    r"\b(?:std::)?(?:lock_guard|unique_lock|scoped_lock)\b|\.lock\(\)")
BODY_RE = re.compile(r"\bbody\s*=\s*\[")
WAIVER = "mp-lint: allow(lock-in-task-body)"


def strip_comments_and_strings(text):
    """Blanks out comments and string literals, preserving offsets."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(" ".join("\n" if ch == "\n" else " " for ch in [])
                       or "".join("\n" if ch == "\n" else " "
                                  for ch in text[i:j]))
            i = j
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def lambda_span(code, start):
    """[start, end) of the lambda body whose `[` capture begins at start."""
    brace = code.find("{", start)
    if brace < 0:
        return start, start
    depth, i = 0, brace
    while i < len(code):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return brace, i + 1
        i += 1
    return brace, len(code)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def lint_file(path, findings):
    try:
        rel = path.relative_to(REPO)
    except ValueError:  # explicit path outside the repo: lint it fully
        rel = path
    text = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments_and_strings(text)
    in_src = "src" in rel.parts
    is_header = path.suffix == ".h"

    for m in re.finditer(r"using\s+namespace\s+std\s*;", code):
        findings.append((rel, line_of(text, m.start()), "using-namespace-std",
                         "`using namespace std;` is banned"))

    if str(rel) != "src/ptg/types.h":
        for m in RAW_NEW_RE.finditer(code):
            findings.append(
                (rel, line_of(text, m.start()), "raw-databuf-new",
                 "raw `new std::vector<double>`; use make_buf/"
                 "make_buf_pooled (src/ptg/types.h)"))

    if str(rel) == "src/ptg/context.cpp":
        lint_reset_stats(path, rel, text, code, findings)

    if in_src:
        for m in BODY_RE.finditer(code):
            lo, hi = lambda_span(code, m.end() - 1)
            body_code = code[lo:hi]
            lock = LOCK_RE.search(body_code)
            if lock and WAIVER not in text[lo:hi]:
                findings.append(
                    (rel, line_of(text, lo + lock.start()),
                     "lock-in-task-body",
                     "lock acquisition inside a task body; task bodies "
                     "must be lock-free (waiver: // " + WAIVER + ")"))

        n_includes = len(re.findall(r"^\s*#\s*include\b", code, re.M))
        if n_includes > MAX_INCLUDES:
            findings.append(
                (rel, 1, "include-count",
                 f"{n_includes} includes (max {MAX_INCLUDES}); "
                 "split the file or trim the interface"))

        if is_header:
            first_directive = re.search(r"^\s*#\s*(\w+)", code, re.M)
            if not first_directive or first_directive.group(1) != "pragma" \
                    or "#pragma once" not in code:
                findings.append((rel, 1, "pragma-once",
                                 "header must start with #pragma once"))
            if re.search(r"#\s*include\s*<iostream>", code):
                findings.append(
                    (rel, line_of(text,
                                  code.find("<iostream>")),
                     "iostream-in-header",
                     "<iostream> in a src/ header; use <cstdio> or "
                     "support/log.h in the .cpp"))


RESET_FN_RE = re.compile(r"void\s+Context::reset_local_state\s*\([^)]*\)\s*\{")
RESET_SNAPSHOTS = ("steal_stats()", "failure_stats()", "sched_->stats()")


def lint_reset_stats(path, rel, text, code, findings):
    """reset-stats-discipline: the persistent-Context reset body must read
    (acquire) and validate() every stats counter family before it zeroes
    (release) the first counter — see src/ptg/context.h's counter-pair
    discipline. Anchored on Context::reset_local_state; if that function
    disappears the rule reports, so a rename cannot silently retire it."""
    m = RESET_FN_RE.search(code)
    if not m:
        findings.append(
            (rel, 1, "reset-stats-discipline",
             "Context::reset_local_state not found; the reset-path stats "
             "discipline cannot be checked (update tools/lint.py if the "
             "reset body moved)"))
        return
    lo, hi = lambda_span(code, m.end() - 1)
    body = code[lo:hi]
    first_zero = body.find(".store(0")
    if first_zero < 0:
        findings.append(
            (rel, line_of(text, lo), "reset-stats-discipline",
             "reset body zeroes no counters; the between-runs reset must "
             "re-arm the atomic counters (or this rule needs updating)"))
        return
    for snap in RESET_SNAPSHOTS:
        pos = body.find(snap)
        if pos < 0 or pos > first_zero:
            where = "missing" if pos < 0 else "after the first `.store(0`"
            findings.append(
                (rel, line_of(text, lo + (pos if pos >= 0 else 0)),
                 "reset-stats-discipline",
                 f"stats snapshot `{snap}` {where}: every counter family "
                 "must be snapshotted (acquire) and validated before any "
                 "counter is zeroed (release)"))
    n_validate = body.count(".validate()", 0, first_zero)
    if n_validate < len(RESET_SNAPSHOTS):
        findings.append(
            (rel, line_of(text, lo), "reset-stats-discipline",
             f"only {n_validate} .validate() call(s) before the first "
             f"`.store(0` (need {len(RESET_SNAPSHOTS)}: steal, failure, "
             "scheduler)"))


def run_tidy():
    tidy = shutil.which("clang-tidy")
    if not tidy:
        print("lint.py --tidy: clang-tidy not found on this host; skipped")
        return 0
    sources = sorted(str(p) for p in (REPO / "src").rglob("*.cpp"))
    r = subprocess.run([tidy, "-p", str(REPO / "build"), *sources],
                       cwd=REPO)
    return r.returncode


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    roots = ([pathlib.Path(a) if pathlib.Path(a).is_absolute() else REPO / a
              for a in args] if args else [REPO / "src"])
    files = []
    for root in roots:
        if root.is_file():
            files.append(root)
        else:
            files.extend(sorted(root.rglob("*.h")))
            files.extend(sorted(root.rglob("*.cpp")))
    findings = []
    for f in files:
        lint_file(f, findings)
    for rel, line, rule, msg in findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
    if "--tidy" in argv and run_tidy() != 0:
        return 1
    if findings:
        print(f"lint.py: {len(findings)} finding(s) in {len(files)} files")
        return 1
    print(f"lint.py: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
