// mp-verify — static-analysis driver for the PTG dataflow verifier.
//
// Materializes the task graph of every (workload, variant) combination —
// the same taskpool execute_ptg() would run, built by build_ptg() — and
// runs all three static passes over it without executing a single task
// body:
//   1. plan layer   (MPP001-MPP007, analysis/plan_verify.h)
//   2. graph layer  (MPV001-MPV011, analysis/graph_verify.h)
//   3. TCE layer    (MPT001-MPT005, analysis/tce_verify.h)
//
// Exit status 0 when every combination verifies clean, 1 when any
// diagnostic fires, 2 on usage errors. Run with no arguments to sweep all
// workloads (t2_7, hh_ladder, fused), both tile-space specs (C1 and a
// 4-irrep C2v-style one) and all five paper variants on 3 ranks — plus the
// tiled-Cholesky app's PTG (apps/cholesky.h's build_cholesky_pool, the
// exact pool tiled_cholesky() executes) through the graph layer at several
// tile counts.
//
// Usage:
//   mp-verify [--workload=all|t2_7|hh_ladder|fused] [--spec=all|small|irreps]
//             [--variant=all|v1|v2|v3|v4|v5] [--nranks=N] [--quiet]
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/graph_verify.h"
#include "analysis/tce_verify.h"
#include "apps/cholesky.h"
#include "ga/global_array.h"
#include "tce/block_tensor.h"
#include "tce/chain_plan.h"
#include "tce/imbalance.h"
#include "tce/inspector.h"
#include "tce/storage.h"
#include "tce/tiles.h"
#include "tce/variants.h"
#include "vc/cluster.h"

namespace {

using namespace mp;

tce::TileSpaceSpec small_spec() {
  tce::TileSpaceSpec s;
  s.n_occ_alpha = 3;
  s.n_occ_beta = 3;
  s.n_virt_alpha = 5;
  s.n_virt_beta = 5;
  s.tile_size = 2;
  return s;
}

tce::TileSpaceSpec irreps_spec() {
  tce::TileSpaceSpec s = small_spec();
  s.n_virt_alpha = 6;
  s.n_virt_beta = 6;
  s.num_irreps = 4;
  return s;
}

/// Owns everything a verification pass needs to stay alive: the tile
/// space, block shapes, (empty) Global Arrays, the inspected plan and the
/// store list. No tensor data is ever filled in — the passes are static.
struct Workload {
  std::string name;
  std::unique_ptr<tce::TileSpace> space;
  std::vector<std::unique_ptr<tce::BlockTensor4>> shapes;
  std::vector<std::unique_ptr<ga::GlobalArray>> gas;
  tce::ChainPlan plan;
  tce::StoreList stores;
};

using tce::RangeKind;

tce::BlockTensor4* add_shape(Workload& w, std::array<RangeKind, 4> ranges,
                             bool tri01 = false, bool tri23 = false) {
  w.shapes.push_back(std::make_unique<tce::BlockTensor4>(*w.space, ranges,
                                                         tri01, tri23));
  return w.shapes.back().get();
}

void add_store(Workload& w, vc::Cluster* cluster, tce::BlockTensor4* shape) {
  w.gas.push_back(
      std::make_unique<ga::GlobalArray>(cluster, shape->ga_size()));
  w.stores.push_back(tce::TensorStore{shape, w.gas.back().get()});
}

Workload make_workload(const std::string& kind, const std::string& spec_name,
                       const tce::TileSpaceSpec& spec, vc::Cluster* cluster,
                       int nranks) {
  Workload w;
  w.name = kind + "/" + spec_name;
  w.space = std::make_unique<tce::TileSpace>(spec);
  const auto kV = RangeKind::kVirt, kO = RangeKind::kOcc;
  auto* t = add_shape(w, {kV, kV, kO, kO});
  auto* r = add_shape(w, {kV, kV, kO, kO}, true, true);
  const bool on_t2_7 =
      kind == "t2_7" || kind == "fused" || kind == "skewed" ||
      kind == "nested";
  if (on_t2_7) {
    auto* v = add_shape(w, {kV, kV, kV, kV});
    add_store(w, cluster, v);
    add_store(w, cluster, t);
    add_store(w, cluster, r);
    w.plan = tce::inspect_t2_7(*w.space, {v, t, r});
  }
  if (kind == "skewed" || kind == "nested") {
    // Imbalanced chain-length transforms of the t2_7 plan (the work-
    // stealing workloads, DESIGN.md §9). Same stores, same block keys —
    // only the GEMM lists change, so every static pass must still hold.
    tce::ImbalanceSpec imb;
    imb.nranks = nranks;
    w.plan = kind == "skewed"
                 ? tce::make_skewed_plan(w.plan, imb)
                 : tce::make_nested_imbalance_plan(w.plan, imb);
  }
  if (kind == "hh_ladder") {
    auto* ww = add_shape(w, {kO, kO, kO, kO});
    add_store(w, cluster, ww);
    add_store(w, cluster, t);
    add_store(w, cluster, r);
    w.plan = tce::inspect_hh_ladder(*w.space, {ww, t, r});
  }
  if (kind == "fused") {
    // hh chains' A store becomes fused store 3; t and r are shared — the
    // same layout cc/integration.cpp uses for its fused runs.
    auto* ww = add_shape(w, {kO, kO, kO, kO});
    const auto hh = tce::inspect_hh_ladder(*w.space, {ww, t, r});
    w.plan = tce::fuse_plans(w.plan, hh, {3, 1, 2});
    add_store(w, cluster, ww);
  }
  return w;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workload=all|t2_7|hh_ladder|fused|skewed|nested"
               "|cholesky]\n"
               "          [--spec=all|small|irreps] "
               "[--variant=all|v1|v2|v3|v4|v5]\n"
               "          [--nranks=N] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string want_workload = "all";
  std::string want_spec = "all";
  std::string want_variant = "all";
  int nranks = 3;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = val("--workload=")) {
      want_workload = v;
    } else if (const char* v = val("--spec=")) {
      want_spec = v;
    } else if (const char* v = val("--variant=")) {
      want_variant = v;
    } else if (const char* v = val("--nranks=")) {
      nranks = std::atoi(v);
      if (nranks < 1) return usage(argv[0]);
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }

  // The cluster only provides rank geometry for the Global Arrays; no SPMD
  // region ever starts.
  vc::Cluster cluster(nranks);

  std::vector<std::pair<std::string, tce::TileSpaceSpec>> specs;
  if (want_spec == "all" || want_spec == "small") {
    specs.emplace_back("small", small_spec());
  }
  if (want_spec == "all" || want_spec == "irreps") {
    specs.emplace_back("irreps", irreps_spec());
  }
  if (specs.empty()) return usage(argv[0]);

  std::vector<std::string> kinds;
  for (const char* k : {"t2_7", "hh_ladder", "fused", "skewed", "nested"}) {
    if (want_workload == "all" || want_workload == k) kinds.push_back(k);
  }
  const bool want_cholesky =
      want_workload == "all" || want_workload == "cholesky";
  if (kinds.empty() && !want_cholesky) return usage(argv[0]);

  size_t combos = 0, failures = 0, total_diags = 0;
  for (const auto& [spec_name, spec] : specs) {
    for (const auto& kind : kinds) {
      const Workload w =
          make_workload(kind, spec_name, spec, &cluster, nranks);
      for (const auto& variant : tce::VariantConfig::all()) {
        if (want_variant != "all" && want_variant != variant.name) continue;
        ++combos;
        const auto report =
            analysis::verify_variant(w.plan, w.stores, variant, nranks);
        if (!report.clean()) {
          ++failures;
          total_diags += report.diags.size();
          std::printf("FAIL %-16s %-3s nranks=%d: %zu diagnostic(s)\n",
                      w.name.c_str(), variant.name.c_str(), nranks,
                      report.diags.size());
          std::printf("%s", analysis::render(report.diags).c_str());
        } else if (!quiet) {
          std::printf("ok   %-16s %-3s nranks=%d: %zu tasks, %zu edges\n",
                      w.name.c_str(), variant.name.c_str(), nranks,
                      report.num_tasks, report.num_edges);
        }
      }
    }
  }
  // The Cholesky app is not a TCE workload — no plan, no variants, no tile
  // space — so it skips the plan/TCE passes and runs the graph layer
  // directly over the pool tiled_cholesky() executes (build_cholesky_pool;
  // the --spec / --variant filters do not apply).
  if (want_cholesky) {
    for (const int tiles : {2, 4, 6}) {
      ++combos;
      const ptg::Taskpool pool = apps::build_cholesky_pool(tiles, nranks);
      const analysis::GraphModel g = analysis::materialize_graph(pool, nranks);
      const std::vector<analysis::Diag> diags = analysis::verify_graph(pool, g);
      const std::string name = "cholesky/T" + std::to_string(tiles);
      if (!diags.empty()) {
        ++failures;
        total_diags += diags.size();
        std::printf("FAIL %-16s %-3s nranks=%d: %zu diagnostic(s)\n",
                    name.c_str(), "ptg", nranks, diags.size());
        std::printf("%s", analysis::render(diags).c_str());
      } else if (!quiet) {
        std::printf("ok   %-16s %-3s nranks=%d: %zu tasks, %zu edges\n",
                    name.c_str(), "ptg", nranks, g.tasks.size(), g.num_edges);
      }
    }
  }
  if (combos == 0) return usage(argv[0]);
  if (!quiet || failures > 0) {
    std::printf("mp-verify: %zu combination(s), %zu failed, %zu diagnostic(s)\n",
                combos, failures, total_diags);
  }
  return failures == 0 ? 0 : 1;
}
