// mp-explore — systematic model checking of the distributed runtime
// protocols (DESIGN.md §12).
//
// Enumerates interleavings of a small protocol configuration (message
// deliveries, drops, duplications, task executions, steal ticks, crashes,
// death confirmations, resets) either exhaustively with sleep-set
// partial-order reduction or as seeded random walks, checking the MPS0xx
// protocol invariants at every step. Any violation is reported together
// with a minimized, replayable schedule file.
//
// Exit status 0 when the explored space is clean, 1 when any MPS finding
// fires, 2 on usage errors.
//
// Usage:
//   mp-explore [--workload=t2_7|hh] [--ranks=N] [--stealing] [--heartbeats]
//              [--crash=R] [--submissions=N] [--drops=N] [--dups=N]
//              [--max-steps=N] [--max-messages=N] [--max-transitions=N]
//              [--mutate=skip_watchdog_progress_rule|skip_recovery_zero_reset|
//                        skip_seqwindow_rebase]
//              [--walk=N] [--seed=S] [--replay=FILE] [--save=FILE] [--quiet]
//
// Default mode is exhaustive; --walk=N runs N random walks instead
// (MP_EXPLORE_BUDGET overrides N when set); --replay=FILE re-executes a
// recorded schedule deterministically and reports its findings.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/explore.h"

namespace {

using namespace mp;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workload=t2_7|hh] [--ranks=N] [--stealing]\n"
               "          [--heartbeats] [--crash=R] [--submissions=N]\n"
               "          [--drops=N] [--dups=N] [--max-steps=N]\n"
               "          [--max-messages=N] [--max-transitions=N]\n"
               "          [--mutate=NAME] [--walk=N] [--seed=S]\n"
               "          [--replay=FILE] [--save=FILE] [--quiet]\n",
               argv0);
  return 2;
}

bool parse_flag(const char* arg, const char* name, std::string* value) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

void print_findings(const std::vector<analysis::Diag>& diags) {
  std::printf("%s", analysis::render(diags).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  analysis::ExploreConfig cfg;
  bool quiet = false;
  uint64_t walks = 0;
  uint64_t seed = 0x6d702d6578ULL;  // arbitrary fixed default
  std::string replay_file;
  std::string save_file;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string v;
    if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--stealing") == 0) {
      cfg.stealing = true;
    } else if (std::strcmp(arg, "--heartbeats") == 0) {
      cfg.heartbeats = true;
    } else if (parse_flag(arg, "--workload", &v)) {
      cfg.workload = v;
    } else if (parse_flag(arg, "--ranks", &v)) {
      cfg.nranks = std::stoi(v);
    } else if (parse_flag(arg, "--crash", &v)) {
      cfg.crash_victim = std::stoi(v);
    } else if (parse_flag(arg, "--submissions", &v)) {
      cfg.submissions = std::stoi(v);
    } else if (parse_flag(arg, "--drops", &v)) {
      cfg.drop_budget = std::stoi(v);
    } else if (parse_flag(arg, "--dups", &v)) {
      cfg.dup_budget = std::stoi(v);
    } else if (parse_flag(arg, "--max-steps", &v)) {
      cfg.max_steps = std::stoi(v);
    } else if (parse_flag(arg, "--max-messages", &v)) {
      cfg.max_messages = std::stoull(v);
    } else if (parse_flag(arg, "--max-transitions", &v)) {
      cfg.max_transitions = std::stoull(v);
    } else if (parse_flag(arg, "--mutate", &v)) {
      if (v == "skip_watchdog_progress_rule") {
        cfg.mutations.skip_watchdog_progress_rule = true;
      } else if (v == "skip_recovery_zero_reset") {
        cfg.mutations.skip_recovery_zero_reset = true;
      } else if (v == "skip_seqwindow_rebase") {
        cfg.mutations.skip_seqwindow_rebase = true;
      } else {
        std::fprintf(stderr, "unknown mutation '%s'\n", v.c_str());
        return usage(argv[0]);
      }
    } else if (parse_flag(arg, "--walk", &v)) {
      walks = std::stoull(v);
    } else if (parse_flag(arg, "--seed", &v)) {
      seed = std::stoull(v);
    } else if (parse_flag(arg, "--replay", &v)) {
      replay_file = v;
    } else if (parse_flag(arg, "--save", &v)) {
      save_file = v;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg);
      return usage(argv[0]);
    }
  }

  try {
    // ---- replay mode ------------------------------------------------------
    if (!replay_file.empty()) {
      std::ifstream in(replay_file);
      if (!in) {
        std::fprintf(stderr, "mp-explore: cannot open '%s'\n",
                     replay_file.c_str());
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      const analysis::Schedule sched =
          analysis::Schedule::from_text(text.str());
      const analysis::ReplayResult rr = analysis::replay_schedule(sched);
      if (!rr.ok) {
        std::fprintf(stderr, "mp-explore: replay failed: %s\n",
                     rr.error.c_str());
        return 2;
      }
      if (!quiet) {
        std::printf("replayed %zu steps, fingerprint %016llx\n",
                    sched.steps.size(),
                    static_cast<unsigned long long>(rr.fingerprint));
      }
      print_findings(rr.findings);
      return rr.findings.empty() ? 0 : 1;
    }

    // ---- exploration modes ------------------------------------------------
    analysis::ExploreResult res;
    if (walks > 0) {
      const uint64_t budget = analysis::explore_walk_budget(walks);
      res = analysis::explore_random_walk(cfg, budget, seed);
      if (!quiet) {
        std::printf("random walk: %llu walk budget, %llu states, "
                    "%llu transitions, max depth %d\n",
                    static_cast<unsigned long long>(budget),
                    static_cast<unsigned long long>(res.stats.states),
                    static_cast<unsigned long long>(res.stats.transitions),
                    res.stats.max_depth);
      }
    } else {
      res = analysis::explore_exhaustive(cfg);
      if (!quiet) {
        std::printf(
            "exhaustive: %llu states, %llu transitions, %llu sleep-pruned, "
            "%llu cache-pruned, %llu cycles, %llu truncated, %llu diagnosed, "
            "max depth %d, %s\n",
            static_cast<unsigned long long>(res.stats.states),
            static_cast<unsigned long long>(res.stats.transitions),
            static_cast<unsigned long long>(res.stats.sleep_pruned),
            static_cast<unsigned long long>(res.stats.cache_pruned),
            static_cast<unsigned long long>(res.stats.cycles),
            static_cast<unsigned long long>(res.stats.truncated),
            static_cast<unsigned long long>(res.stats.diagnosed),
            res.stats.max_depth, res.complete ? "complete" : "incomplete");
      }
    }

    if (res.findings.empty()) {
      if (!quiet) std::printf("clean: no MPS findings\n");
      return 0;
    }

    const analysis::ExploreFinding& f = res.findings.front();
    std::vector<analysis::Diag> diags = {f.diag};
    print_findings(diags);
    const analysis::Schedule minimized =
        analysis::minimize_schedule(f.schedule, f.diag.code);
    if (!quiet) {
      std::printf("schedule: %zu steps (minimized from %zu)\n",
                  minimized.steps.size(), f.schedule.steps.size());
    }
    if (!save_file.empty()) {
      std::ofstream out(save_file);
      if (!out) {
        std::fprintf(stderr, "mp-explore: cannot write '%s'\n",
                     save_file.c_str());
        return 2;
      }
      out << minimized.to_text();
      if (!quiet) std::printf("saved: %s\n", save_file.c_str());
    } else if (!quiet) {
      std::printf("%s", minimized.to_text().c_str());
    }
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mp-explore: %s\n", e.what());
    return 2;
  }
}
