#!/usr/bin/env python3
"""Sanity-check a committed benchmark baseline against the current HEAD.

Benchmark baselines (BENCH_kernels.json, BENCH_resubmit.json) embed the
git_sha of the commit that produced them. Comparing fresh numbers against a
baseline whose commit is not an ancestor of HEAD — a divergent branch, a
rebase that rewrote it away — silently measures against unrelated code.

This check only ever WARNS (exit 0): perf baselines go stale for benign
reasons (squash merges, shallow CI clones) and must not break the build.
Exit 2 is reserved for misuse (missing/unparsable file).

Usage: bench_baseline_check.py BENCH_kernels.json [more.json ...]
"""
import json
import subprocess
import sys


def check(path: str) -> None:
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_baseline_check: cannot read {path}: {e}")
        sys.exit(2)

    sha = doc.get("git_sha", "unknown")
    schema = doc.get("schema", "?")
    if not isinstance(sha, str) or len(sha) != 40:
        print(f"WARNING: {path} ({schema}): baseline git_sha is '{sha}' — "
              "regenerate the baseline to pin it to a real commit")
        return

    proc = subprocess.run(
        ["git", "merge-base", "--is-ancestor", sha, "HEAD"],
        capture_output=True,
        text=True,
    )
    if proc.returncode == 0:
        print(f"{path}: baseline commit {sha[:12]} is an ancestor of HEAD")
    elif proc.returncode == 1:
        print(f"WARNING: {path} ({schema}): baseline commit {sha[:12]} is "
              "NOT an ancestor of HEAD — the committed numbers come from a "
              "divergent history; regenerate the baseline before comparing")
    else:
        # Unknown object (shallow clone, rewritten history): warn, don't fail.
        print(f"WARNING: {path} ({schema}): cannot resolve baseline commit "
              f"{sha[:12]} ({proc.stderr.strip()})")


def main() -> None:
    if len(sys.argv) < 2:
        print(__doc__)
        sys.exit(2)
    for path in sys.argv[1:]:
        check(path)


if __name__ == "__main__":
    main()
